package raizn

import (
	"errors"
	"hash/crc32"

	"raizn/internal/obs"
	"raizn/internal/parity"
	"raizn/internal/ppengine"
	"raizn/internal/ring"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// SubmitWrite submits a sequential write of data at lba. Like a physical
// ZNS zone, a logical zone only accepts writes at its write pointer, and
// a write must not cross a logical zone boundary.
//
// The call validates, claims the zone range, and issues all sub-IOs
// (data, parity, partial-parity logs) before returning; the future
// completes when enough state is durable for the write's flags:
//
//   - no flags: data + (partial) parity submitted and transferred, i.e.
//     the write is tolerant of a single device failure (§5.1: completion
//     is not reported before partial parity is written);
//   - FUA / Preflush: additionally, the write and all preceding data in
//     the same logical zone are power-loss durable (§5.3).
//
// The hot path runs in three phases (see DESIGN.md, "write-path lock
// discipline"):
//
//  1. plan (under lz.mu): validate, claim the range and a submission
//     ticket, copy partial-stripe payloads into stripe buffers, and
//     record every device sub-IO as a plan entry;
//  2. compute (no locks): parity XOR, partial-parity images and CRC32-C
//     rows over the now-immutable snapshot;
//  3. submit (under lz.mu, in ticket order): coalesce physically
//     adjacent plan entries per device into single (vectored) write
//     commands and issue them, then publish the submitted write pointer.
//
// Metadata appends (partial parity, relocations, checksums) are prepared
// in the phases but issued after lz.mu is released, because metadata GC
// takes zone locks while checkpointing.
func (v *Volume) SubmitWrite(lba int64, data []byte, flags zns.Flag) *vclock.Future {
	if len(data) == 0 || len(data)%v.sectorSize != 0 {
		return v.clk.Completed(ErrUnaligned)
	}
	nSectors := int64(len(data) / v.sectorSize)
	if lba < 0 || lba+nSectors > v.lt.numSectors() {
		return v.clk.Completed(ErrOutOfRange)
	}
	z := v.lt.zoneOf(lba)
	off := lba - v.lt.zoneStart(z)
	if off+nSectors > v.lt.zoneSectors() {
		return v.clk.Completed(ErrZoneBoundary)
	}
	if v.ReadOnly() {
		return v.clk.Completed(ErrReadOnly)
	}

	// Root span of the request; nil (and free) while tracing is disabled.
	sp := v.tracer.Begin(obs.OpWrite, lba, int64(len(data)))

	lz := v.zones[z]
	lz.mu.Lock()
	for lz.resetting {
		lz.cond.Wait()
	}
	if lz.state == zns.ZoneFull {
		lz.mu.Unlock()
		sp.End(ErrZoneFull)
		return v.clk.Completed(ErrZoneFull)
	}
	if off != lz.wp {
		lz.mu.Unlock()
		sp.End(ErrNotSequential)
		return v.clk.Completed(ErrNotSequential)
	}
	if lz.state == zns.ZoneEmpty || lz.state == zns.ZoneClosed {
		if err := v.openZoneSlot(lz); err != nil {
			lz.mu.Unlock()
			sp.End(err)
			return v.clk.Completed(err)
		}
	}
	lz.wp = off + nSectors
	// runWrite unlocks lz.mu.
	return v.runWrite(sp, lz, off, data, flags)
}

// runWrite carries a validated, range-claimed write through issue and
// completion. Caller holds lz.mu (with lz.wp already advanced); runWrite
// releases it.
func (v *Volume) runWrite(sp *obs.Span, lz *logicalZone, off int64, data []byte, flags zns.Flag) *vclock.Future {
	end := off + int64(len(data))/int64(v.sectorSize)
	full := end == v.lt.zoneSectors()
	v.stats.logicalWriteBytes.Add(int64(len(data)))

	if v.cfg.LegacyWritePath {
		return v.runWriteLegacy(sp, lz, off, end, full, data, flags)
	}

	ws := v.getWriteState()
	ws.sp = sp
	ws.z = lz.idx
	ws.flags = flags
	ws.end = end
	ws.full = full

	// Claim the submission ticket at range-claim time: submit-phase order
	// must equal write-pointer order or device writes would arrive out of
	// sequence. A failed plan still runs its (possibly empty) submit
	// phase so the ticket line keeps moving.
	lz.submitTail++
	ws.ticket = lz.submitTail

	planErr := v.planWriteLocked(ws, lz, off, data)
	lz.mu.Unlock()
	sp.Mark(obs.PhasePlan)
	v.fireHook("raizn.write.plan", obs.SrcLogical, ws.z, off)

	v.computeWrite(ws)
	sp.Mark(obs.PhaseCompute)
	v.fireHook("raizn.write.compute", obs.SrcLogical, ws.z, off)

	lz.mu.Lock()
	for lz.submitHead != ws.ticket-1 {
		lz.cond.Wait()
	}
	v.submitWriteLocked(ws, lz, planErr == nil)
	lz.mu.Unlock()
	if ws.batch != nil {
		// Start the completion walker now that no zone lock is held. All
		// device state was applied at drain time (under lz.mu, like the
		// direct path applies at submit); the walker only delivers
		// completions at their virtual times, so starting it here leaves
		// simulated timing unchanged.
		ws.batch.Submit()
		ws.batch = nil
	}
	v.fireHook("raizn.write.submit", obs.SrcLogical, ws.z, end)

	ws.futs = v.issuePendingMD(sp, ws.pending, ws.futs)
	sp.Mark(obs.PhaseSubmit)
	v.fireHook("raizn.write.md", obs.SrcLogical, ws.z, end)

	if planErr != nil {
		// Mirror the legacy path: sub-IOs already issued are left to
		// complete on their own; the caller sees the plan error.
		ws := ws
		v.clk.Go(func() {
			_ = v.awaitSubIOs(ws.futs)
			v.putWriteState(ws)
		})
		sp.End(planErr)
		return v.clk.Completed(planErr)
	}

	result := v.clk.NewFuture()
	v.clk.Go(func() {
		if err := v.awaitSubIOs(ws.futs); err != nil {
			// A sub-IO failure that is not a tolerated device death
			// leaves the logical write pointer ahead of what the host
			// believes was written; fail stop rather than serve an
			// inconsistent volume.
			v.mu.Lock()
			v.readOnly = true
			v.mu.Unlock()
			v.putWriteState(ws)
			sp.End(err)
			result.Complete(err)
			return
		}
		v.putWriteState(ws)
		if flags&(zns.FUA|zns.Preflush) != 0 {
			if err := v.persistUpTo(lz, end); err != nil {
				sp.End(err)
				result.Complete(err)
				return
			}
		}
		v.fireHook("raizn.write.done", obs.SrcLogical, lz.idx, end)
		sp.End(nil)
		result.Complete(nil)
	})
	return result
}

// plannedIO is one device sub-write prepared during the plan phase and
// issued, possibly merged with its neighbors, during the submit phase.
type plannedIO struct {
	dev      int
	pba      int64  // absolute device sector
	lba      int64  // logical start, for relocation records (data entries)
	data     []byte // payload; parity entries are filled by the compute phase
	isParity bool
	s        int64 // zone-relative stripe
	zrwa     bool  // in-place parity update through the ZRWA; never merged
}

// parityTask is one parity image the compute phase must produce.
type parityTask struct {
	planIdx  int           // plan entry receiving the image
	s        int64         // stripe
	buf      *stripeBuffer // source buffer; nil when src holds the full stripe
	src      []byte        // caller data covering the whole stripe (buf == nil)
	fill     int64         // stripe data fill the image covers
	complete bool          // stripe completed: also CRC the units, recycle buf
}

// ppTask is one partial-parity log record the compute phase must build.
type ppTask struct {
	s    int64
	buf  *stripeBuffer
	fill int64 // buffer fill snapshot
	a, b int64 // zone-relative stripe offsets this write covered
}

// writeState carries one logical write through its phases. States are
// pooled per volume; every slice is reused across writes.
type writeState struct {
	sp     *obs.Span // request root span; nil while tracing is disabled
	z      int
	flags  zns.Flag
	end    int64
	full   bool
	ticket uint64

	plan    []plannedIO
	parity  []parityTask
	pp      []ppTask
	futs    []subIO
	pending []pendingMD
	images  [][]byte // parity image backing buffers, reused in place
	crcs    []uint32 // completed-stripe CRC rows, stride csSlots()
	crcS    []int64  // stripe index per CRC row
	segs    [][]byte // submit-phase gather scratch
	srcs    [][]byte // fused XOR+CRC source scratch (ring mode)

	// Ring mode: staged SQEs keep their gather lists alive until the
	// device drains them, so runs are parked in segStore (an arena reused
	// across writes) instead of the recycled segs scratch, and the batch
	// itself is carried here so runWrite can Submit it after lz.mu is
	// released.
	batch    *ring.Batch
	segStore [][]byte
}

func (v *Volume) getWriteState() *writeState {
	if x := v.wsPool.Get(); x != nil {
		ws := x.(*writeState)
		ws.plan = ws.plan[:0]
		ws.parity = ws.parity[:0]
		ws.pp = ws.pp[:0]
		ws.futs = ws.futs[:0]
		ws.pending = ws.pending[:0]
		ws.crcs = ws.crcs[:0]
		ws.crcS = ws.crcS[:0]
		ws.segs = ws.segs[:0]
		ws.segStore = ws.segStore[:0]
		return ws
	}
	return &writeState{}
}

func (v *Volume) putWriteState(ws *writeState) {
	// Drop payload references so pooled states don't pin caller buffers.
	for i := range ws.plan {
		ws.plan[i].data = nil
	}
	for i := range ws.parity {
		ws.parity[i].buf, ws.parity[i].src = nil, nil
	}
	for i := range ws.pp {
		ws.pp[i].buf = nil
	}
	for i := range ws.futs {
		ws.futs[i] = subIO{}
	}
	for i := range ws.pending {
		ws.pending[i] = pendingMD{}
	}
	for i := range ws.segs {
		ws.segs[i] = nil
	}
	for i := range ws.srcs {
		ws.srcs[i] = nil
	}
	for i := range ws.segStore {
		ws.segStore[i] = nil
	}
	ws.sp = nil
	ws.batch = nil
	v.wsPool.Put(ws)
}

// image returns the i-th parity image buffer of the state, sized to
// size bytes, reusing the backing array across writes.
func (ws *writeState) image(i, size int) []byte {
	for len(ws.images) <= i {
		ws.images = append(ws.images, nil)
	}
	if cap(ws.images[i]) < size {
		ws.images[i] = make([]byte, size)
	}
	return ws.images[i][:size]
}

// planWriteLocked (phase 1) splits [off, off+len) of zone lz into
// per-stripe work: copy partial-stripe payloads into stripe buffers and
// record every device sub-IO, parity image and partial-parity log the
// write needs. Caller holds lz.mu.
//
// Full-stripe chunks bypass the stripe buffers: their parity and CRCs
// are computed straight from the caller's data, which remains valid
// until the submit phase finishes (all phases run inside SubmitWrite).
// Only head/tail partial stripes occupy a buffer, so a single write can
// never exhaust the buffer pool against itself.
func (v *Volume) planWriteLocked(ws *writeState, lz *logicalZone, off int64, data []byte) error {
	ss := int64(v.sectorSize)
	stripeSec := v.lt.stripeSectors()
	z := lz.idx
	ipp := v.eng.InPlaceParityPrefix()

	for len(data) > 0 {
		s := off / stripeSec
		inStripe := off % stripeSec
		n := stripeSec - inStripe
		if avail := int64(len(data)) / ss; n > avail {
			n = avail
		}
		chunk := data[:n*ss]

		_, buffered := lz.active[s]
		var buf *stripeBuffer
		if n != stripeSec || buffered {
			var err error
			buf, err = v.stripeBufferLocked(lz, s, inStripe)
			if err != nil {
				return err
			}
			copy(buf.data[inStripe*ss:], chunk)
			buf.fill = inStripe + n
		}

		v.planDataLocked(ws, z, s, inStripe, chunk)

		pDev := v.lt.parityDev(z, s)
		pPBA := v.lt.parityPBA(z, s)
		switch {
		case buf == nil || buf.fill == stripeSec:
			// Stripe complete: one full parity unit plus the CRC row.
			// (In ZRWA mode the unit goes in place through the random
			// write area and is counted as such at submit.)
			if !ipp {
				v.stats.fullParityWrites.Add(1)
			}
			ws.plan = append(ws.plan, plannedIO{
				dev: pDev, pba: pPBA, isParity: true, s: s,
				zrwa: ipp,
			})
			var src []byte
			if buf == nil {
				src = chunk
			}
			ws.parity = append(ws.parity, parityTask{
				planIdx: len(ws.plan) - 1, s: s, buf: buf, src: src,
				fill: stripeSec, complete: true,
			})
		case ipp:
			// Stripe still partial: update the parity prefix in place
			// through the random write area (§5.4).
			ws.plan = append(ws.plan, plannedIO{
				dev: pDev, pba: pPBA, isParity: true, s: s, zrwa: true,
			})
			ws.parity = append(ws.parity, parityTask{
				planIdx: len(ws.plan) - 1, s: s, buf: buf, fill: buf.fill,
			})
		default:
			// Stripe still partial: log partial parity for the region
			// this write affected (§5.1). The log goes to the device
			// that will eventually hold the stripe's parity (Table 1);
			// if that device is dead the data units carry the write.
			if v.mdm(pDev) != nil {
				v.stats.partialParityLogs.Add(1)
				ws.pp = append(ws.pp, ppTask{
					s: s, buf: buf, fill: buf.fill, a: inStripe, b: inStripe + n,
				})
			}
		}

		off += n
		data = data[n*ss:]
	}
	return nil
}

// planDataLocked records the data sub-IOs covering zone-relative stripe
// offsets [inStripe, inStripe+len) of stripe s, one per touched stripe
// unit.
func (v *Volume) planDataLocked(ws *writeState, z int, s, inStripe int64, chunk []byte) {
	ss := int64(v.sectorSize)
	for len(chunk) > 0 {
		u := int(inStripe / v.lt.su)
		intra := inStripe % v.lt.su
		n := v.lt.su - intra
		if avail := int64(len(chunk)) / ss; n > avail {
			n = avail
		}
		ws.plan = append(ws.plan, plannedIO{
			dev:  v.lt.dataDev(z, s, u),
			pba:  int64(z)*v.lt.physZoneSize + s*v.lt.su + intra,
			lba:  v.lt.zoneStart(z) + s*v.lt.stripeSectors() + inStripe,
			data: chunk[:n*ss],
			s:    s,
		})
		chunk = chunk[n*ss:]
		inStripe += n
	}
}

// computeWrite (phase 2) produces every parity image, partial-parity
// payload and CRC row the plan needs. It runs with no locks held: the
// stripe-buffer bytes it reads were written under lz.mu before the plan
// phase released it (our own copies, or a predecessor's — ordered by the
// buffer hand-off in stripeBufferLocked), and concurrent writers only
// touch disjoint byte ranges above our fill snapshots.
func (v *Volume) computeWrite(ws *writeState) {
	ss := int64(v.sectorSize)
	su := v.lt.su
	suBytes := su * ss
	gen := v.Generation(ws.z)
	csDev := v.checksumDev(ws.z)
	nSlots := v.csSlots()

	for i := range ws.parity {
		t := &ws.parity[i]
		plen := su
		if !t.complete && t.fill < su {
			plen = t.fill
		}
		out := ws.image(i, int(plen*ss))
		base := len(ws.crcs)
		if t.complete && v.cfg.UseRing {
			// Fused single pass: XOR the D units into the parity image and
			// accumulate all D+1 CRCs while each block is cache-hot
			// (parity.XORCRCInto). Complete stripes always have the full
			// stripe payload in one contiguous snapshot.
			stripe := t.src
			if t.buf != nil {
				stripe = t.buf.data
			}
			srcs := ws.srcs[:0]
			for u := 0; u < v.lt.d; u++ {
				srcs = append(srcs, stripe[int64(u)*suBytes:int64(u+1)*suBytes])
			}
			ws.srcs = srcs
			for u := 0; u <= v.lt.d; u++ {
				ws.crcs = append(ws.crcs, 0)
			}
			parity.XORCRCInto(out, srcs, ws.crcs[base:], crcTable)
			ws.plan[t.planIdx].data = out
			ws.crcS = append(ws.crcS, t.s)
		} else {
			if t.buf != nil {
				v.parityInto(t.buf.data, t.fill, 0, plen, out)
			} else {
				copy(out, t.src[:plen*ss])
				for u := 1; u < v.lt.d; u++ {
					parity.XORInto(out, t.src[int64(u)*suBytes:int64(u)*suBytes+plen*ss])
				}
			}
			ws.plan[t.planIdx].data = out

			if !t.complete {
				continue
			}
			// CRC row of the completed stripe: D data units + the parity
			// image just computed (shared — parity is XORed exactly once).
			for u := 0; u < v.lt.d; u++ {
				var unit []byte
				if t.buf != nil {
					unit = t.buf.data[int64(u)*suBytes : int64(u+1)*suBytes]
				} else {
					unit = t.src[int64(u)*suBytes : int64(u+1)*suBytes]
				}
				ws.crcs = append(ws.crcs, crc32.Checksum(unit, crcTable))
			}
			ws.crcs = append(ws.crcs, crc32.Checksum(out, crcTable))
			ws.crcS = append(ws.crcS, t.s)
		}
		v.stats.checksumRecords.Add(1)
		if v.mdm(csDev) != nil {
			ws.pending = append(ws.pending, pendingMD{
				dev: csDev,
				rec: &record{
					typ:    recChecksums,
					gen:    gen,
					inline: encodeChecksums(ws.z, t.s, ws.crcs[base:base+nSlots]),
				},
			})
		}
	}

	for _, t := range ws.pp {
		regions := v.lt.intraRegions(t.a, t.b)
		var total int64
		for _, r := range regions {
			total += r.b - r.a
		}
		payload := make([]byte, total*ss)
		pos := int64(0)
		for _, r := range regions {
			v.parityInto(t.buf.data, t.fill, r.a, r.b, payload[pos*ss:(pos+r.b-r.a)*ss])
			pos += r.b - r.a
		}
		ws.pending = append(ws.pending, pendingMD{
			dev: v.lt.parityDev(ws.z, t.s),
			rec: &record{
				typ:      recPartialParity,
				startLBA: v.lt.stripeStart(ws.z, t.s) + t.a,
				endLBA:   v.lt.stripeStart(ws.z, t.s) + t.b,
				gen:      gen,
				payload:  payload,
			},
			useMeta: v.cfg.ParityMode == PPInlineMeta,
			z:       ws.z,
			s:       t.s,
			hasPP:   true,
			pp: ppengine.Append{
				Dev:      v.lt.parityDev(ws.z, t.s),
				Zone:     ws.z,
				Stripe:   t.s,
				StartLBA: v.lt.stripeStart(ws.z, t.s) + t.a,
				EndLBA:   v.lt.stripeStart(ws.z, t.s) + t.b,
				Gen:      gen,
				Payload:  payload,
			},
		})
	}
}

// parityInto XORs the parity of intra-unit offsets [a, b) of a stripe
// with `fill` data sectors present into out (zeroed first). Unwritten
// unit tails contribute zeroes.
func (v *Volume) parityInto(data []byte, fill, a, b int64, out []byte) {
	for i := range out {
		out[i] = 0
	}
	ss := int64(v.sectorSize)
	for u := 0; u < v.lt.d; u++ {
		hi := fill - int64(u)*v.lt.su
		if hi > v.lt.su {
			hi = v.lt.su
		}
		if hi <= a {
			continue
		}
		if hi > b {
			hi = b
		}
		base := int64(u) * v.lt.su * ss
		src := data[base+a*ss : base+hi*ss]
		parity.XORInto(out[:len(src)], src)
	}
}

// submitWriteLocked (phase 3) issues the plan in ticket order: plan
// entries to the same device at physically adjacent addresses merge into
// one vectored write command, burned address ranges split off into
// relocation records (§5.2), and the submitted write pointer advances.
// Caller holds lz.mu and has waited for its ticket.
func (v *Volume) submitWriteLocked(ws *writeState, lz *logicalZone, ok bool) {
	tbl := v.loadDevs()
	z := lz.idx
	ss := int64(v.sectorSize)
	var dataB, parityB int64 // WA category bytes actually sent to devices

	if v.rings != nil {
		// Ring mode: runs become SQEs staged per device; each device
		// drains its whole group under one lock acquisition when the
		// group is flushed below. runWrite submits the batch (starting
		// the completion walker) once lz.mu is released.
		ws.batch = v.rings.Batch()
	}
	for dev := 0; dev < v.lt.n; dev++ {
		d := tbl.zoneDev(dev, z)
		if d == nil {
			continue // failed/not-yet-rebuilt: degraded write omits it
		}
		wpKnown := false
		var devWP int64
		segs := ws.segs[:0]
		var runStart, runNext int64
		for i := range ws.plan {
			e := &ws.plan[i]
			if e.dev != dev {
				continue
			}
			data := e.data
			pba, lba := e.pba, e.lba
			if !e.zrwa {
				if !wpKnown {
					devWP = d.Zone(int(pba / v.lt.physZoneSize)).WP
					wpKnown = true
				}
				if pba < devWP {
					// Burned prefix: relocate [pba, min(wp, pba+n)).
					burn := min(devWP-pba, int64(len(data))/ss)
					ws.pending = append(ws.pending,
						v.relocationRecord(dev, data[:burn*ss], lba, e.isParity, z, e.s))
					data = data[burn*ss:]
					pba += burn
					if len(data) == 0 {
						continue
					}
				}
			}
			if e.zrwa {
				// In-place parity prefix updates are ordered but never
				// merged; flush the pending run first so per-device
				// submission order matches plan order.
				segs = v.flushRun(ws, d, dev, runStart, segs)
				harvestGroup(ws, d, dev)
				v.stats.zrwaParityWrites.Add(1)
				parityB += int64(len(data))
				child := ws.sp.Child(obs.OpDevWrite, dev, pba, int64(len(data)))
				ws.futs = append(ws.futs, subIO{dev: dev, fut: d.WriteZRWASpan(child, pba, data, ws.flags)})
				continue
			}
			if e.isParity {
				parityB += int64(len(data))
			} else {
				dataB += int64(len(data))
			}
			if len(segs) > 0 && pba == runNext {
				segs = append(segs, data)
				runNext += int64(len(data)) / ss
			} else {
				segs = v.flushRun(ws, d, dev, runStart, segs)
				runStart, runNext = pba, pba+int64(len(data))/ss
				segs = append(segs, data)
			}
		}
		ws.segs = v.flushRun(ws, d, dev, runStart, segs)
		harvestGroup(ws, d, dev)
	}
	if dataB > 0 {
		v.stats.waDataBytes.Add(dataB)
	}
	if parityB > 0 {
		v.stats.waParityBytes.Add(parityB)
	}

	// Publish the CRC rows now that the stripe payloads are applied on
	// the devices (writes take effect at submit).
	nSlots := v.csSlots()
	for i, s := range ws.crcS {
		v.setStripeChecksums(z, s, ws.crcs[i*nSlots:(i+1)*nSlots])
	}

	// Recycle buffers of completed stripes. They stayed in lz.active
	// until now so concurrent degraded reads could be served from memory
	// while the stripe's media writes were still pending.
	for i := range ws.parity {
		t := &ws.parity[i]
		if t.complete && t.buf != nil {
			delete(lz.active, t.s)
			t.buf.stripe = -1
			t.buf.fill = 0
			lz.free = append(lz.free, t.buf)
			// The stripe's full parity is on media: its partial-parity
			// state is dead. (A pp append still in flight for this stripe
			// may slip past this and linger live; the zone-full sweep
			// below and zone reset/finish reclaim such strays.)
			v.eng.StripeClosed(z, t.s)
		}
	}
	if ws.full && ok {
		// Every stripe of the zone is complete: sweep all PP state.
		v.eng.ZoneReset(z)
	}

	if lz.submittedWP < ws.end {
		lz.submittedWP = ws.end
	}
	if ws.full && ok {
		v.closeZoneSlot(lz, zns.ZoneFull)
	}
	lz.submitHead++
	lz.cond.Broadcast()
}

// flushRun issues the accumulated run as one device command (vectored
// when it merged more than one sub-IO) and returns the reset scratch.
// In ring mode the run is staged as an SQE on ws.batch instead of being
// issued directly; harvestGroup later drains the device's staged group.
func (v *Volume) flushRun(ws *writeState, d *zns.Device, dev int, start int64, segs [][]byte) [][]byte {
	switch len(segs) {
	case 0:
		return segs
	case 1:
		child := ws.sp.Child(obs.OpDevWrite, dev, start, int64(len(segs[0])))
		if ws.batch != nil {
			ws.batch.Push(zns.Cmd{Op: zns.CmdWrite, Sector: start, Data: segs[0], Flags: ws.flags, Span: child})
		} else {
			ws.futs = append(ws.futs, subIO{dev: dev, fut: d.WriteSpan(child, start, segs[0], ws.flags)})
		}
	default:
		v.stats.coalescedSubWrites.Add(int64(len(segs) - 1))
		var bytes int64
		for _, s := range segs {
			bytes += int64(len(s))
		}
		child := ws.sp.Child(obs.OpDevWrite, dev, start, bytes)
		if ws.batch != nil {
			// The segs scratch is recycled for the next run, so park the
			// gather list in the write state's arena: the SQE must stay
			// valid until the device drains the group.
			base := len(ws.segStore)
			ws.segStore = append(ws.segStore, segs...)
			ws.batch.Push(zns.Cmd{Op: zns.CmdWritev, Sector: start, Segs: ws.segStore[base:len(ws.segStore):len(ws.segStore)], Flags: ws.flags, Span: child})
		} else {
			ws.futs = append(ws.futs, subIO{dev: dev, fut: d.WritevSpan(child, start, segs, ws.flags)})
		}
	}
	return segs[:0]
}

// harvestGroup drains the batch's staged SQE group into device d (ring
// mode only): the device applies the whole group under one lock
// acquisition, and the commands' completion futures — pre-completed for
// rejected commands, exactly like the direct path's failSpan futures —
// join ws.futs for the write's completion wait.
func harvestGroup(ws *writeState, d *zns.Device, dev int) {
	if ws.batch == nil || !ws.batch.Pending() {
		return
	}
	group := ws.batch.Flush(d, dev)
	for i := range group {
		ws.futs = append(ws.futs, subIO{dev: dev, fut: group[i].Fut})
	}
}

// drainSubmitsLocked waits until every claimed write ticket has finished
// its submit phase, so the zone's media state matches lz.wp. Reset,
// finish and rebuild take this barrier before touching physical zones.
// Caller holds lz.mu.
func (v *Volume) drainSubmitsLocked(lz *logicalZone) {
	for lz.submitHead != lz.submitTail {
		lz.cond.Wait()
	}
}

// subIO pairs a completion future with the device it went to, so device
// deaths can be folded into degraded mode instead of failing the write.
type subIO struct {
	dev    int
	fut    *vclock.Future
	repair *repairCtx // foreground reads: reconstruction fallback on a medium error
}

// repairCtx carries enough context to transparently re-serve a failed
// read piece by parity reconstruction (read-repair of latent sector
// errors). The reconstruction path issues plain device reads, so repair
// never nests.
type repairCtx struct {
	z    int
	s    int64
	u    int
	a, b int64
	dst  []byte
	wp   int64 // zone write pointer snapshot from the original read plan
}

// pendingMD is a metadata append prepared under a zone lock and issued
// after it is released.
type pendingMD struct {
	dev      int
	rec      *record
	flags    zns.Flag
	isReloc  bool // register a relocation entry after the append
	isParity bool // relocated parity rather than data
	useMeta  bool // header in per-block metadata (PPInlineMeta)
	z        int
	s        int64

	// pp routes the entry through the parity-persistence engine instead
	// of a direct metadata append (hasPP marks it set; the struct is
	// embedded by value to keep the hot path allocation-free). rec stays
	// populated as the §5.1 log fallback taken when the engine reports
	// backpressure (ok=false).
	hasPP bool
	pp    ppengine.Append
}

// issuePendingMD performs the deferred metadata appends, appending their
// completion futures to futs. The device table is loaded once for the
// whole batch. Each append gets an OpMDAppend child of sp.
func (v *Volume) issuePendingMD(sp *obs.Span, pending []pendingMD, futs []subIO) []subIO {
	if len(pending) == 0 {
		return futs
	}
	tbl := v.loadDevs()
	for i := range pending {
		p := &pending[i]
		if p.hasPP {
			// Partial parity goes through the engine. On backpressure
			// (zraid PP-zone exhaustion) fall through to a plain §5.1 log
			// record so the write path never blocks on PP-zone GC.
			a := p.pp
			a.Span = sp
			a.Flags = int(p.flags)
			if f, ok := v.eng.Persist(a); ok {
				if f != nil {
					futs = append(futs, subIO{dev: p.dev, fut: f})
				}
				continue
			}
			p.useMeta = false
		}
		m := tbl.md[p.dev]
		if m == nil {
			continue // device failed: degraded
		}
		child := sp.Child(obs.OpMDAppend, p.dev, p.rec.startLBA, int64(len(p.rec.payload)+len(p.rec.inline)))
		var fut *vclock.Future
		var pba int64
		var err error
		if p.useMeta {
			fut, pba, err = m.appendMetaSpan(child, p.rec, p.flags)
		} else {
			fut, pba, err = m.appendSpan(child, p.rec, p.flags)
		}
		if err != nil {
			child.End(err)
			if errors.Is(err, zns.ErrDeviceFailed) {
				v.noteDeviceError(p.dev, err)
				continue
			}
			futs = append(futs, subIO{dev: p.dev, fut: v.clk.Completed(err)})
			continue
		}
		if p.isReloc {
			v.addReloc(p.z, relocEntry{
				startLBA: p.rec.startLBA, endLBA: p.rec.endLBA,
				dev: p.dev, pba: pba + 1, data: p.rec.payload,
			}, p.isParity, p.s)
		}
		futs = append(futs, subIO{dev: p.dev, fut: fut})
	}
	return futs
}

// awaitSubIOs waits for all sub-IOs. A sub-IO that failed because its
// device died is tolerated (the write continues in degraded mode, §4.2);
// any other error, or a second device failure, is returned.
func (v *Volume) awaitSubIOs(futs []subIO) error {
	var firstErr error
	for _, s := range futs {
		err := s.fut.Wait()
		if err == nil {
			continue
		}
		if errors.Is(err, zns.ErrDeviceFailed) {
			v.noteDeviceError(s.dev, err)
			if v.ReadOnly() {
				return ErrReadOnly
			}
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// openZoneSlot charges one logical open-zone slot. Caller holds lz.mu.
func (v *Volume) openZoneSlot(lz *logicalZone) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.openCount >= v.maxOpen {
		return ErrTooManyOpen
	}
	v.openCount++
	lz.state = zns.ZoneOpen
	v.jrn.Record(obs.EvZoneState, obs.SrcLogical, lz.idx,
		int64(zns.ZoneOpen), lz.wp, int64(v.openCount), int64(v.openCount))
	return nil
}

// closeZoneSlot releases the open slot when a zone leaves the open state.
// Caller holds lz.mu.
func (v *Volume) closeZoneSlot(lz *logicalZone, to zns.ZoneState) {
	v.mu.Lock()
	if lz.state == zns.ZoneOpen {
		v.openCount--
	}
	lz.state = to
	v.jrn.Record(obs.EvZoneState, obs.SrcLogical, lz.idx,
		int64(to), lz.wp, int64(v.openCount), int64(v.openCount))
	v.mu.Unlock()
}

// stripeBufferLocked returns the buffer accumulating stripe s, whose fill
// must reach expectFill before this writer may extend it. When the stripe
// has no buffer yet: a writer starting the stripe (expectFill == 0)
// claims one from the pool, blocking while the pool is empty (paper §5.1
// notes this backpressure); a writer continuing a stripe waits for its
// predecessor — which holds an earlier submission ticket and therefore
// cannot be waiting on us — to claim and fill it. Caller holds lz.mu.
func (v *Volume) stripeBufferLocked(lz *logicalZone, s int64, expectFill int64) (*stripeBuffer, error) {
	for {
		if b, ok := lz.active[s]; ok {
			if b.fill != expectFill {
				return nil, ErrInconsistent // buffer out of sync with zone WP
			}
			return b, nil
		}
		if expectFill == 0 && len(lz.free) > 0 {
			b := lz.free[len(lz.free)-1]
			lz.free = lz.free[:len(lz.free)-1]
			b.stripe = s
			b.fill = 0
			lz.active[s] = b
			return b, nil
		}
		lz.cond.Wait()
	}
}

// issueDeviceWrite sends one device write, transparently relocating (all
// or part of) it to the device's metadata zone when the target PBA range
// was burned by a crash (below the physical write pointer and thus
// immutable, §5.2). Failed devices are skipped (degraded write). Used by
// the legacy write path and the zone-seal path in FinishZone.
func (v *Volume) issueDeviceWrite(sp *obs.Span, dev int, pba int64, data []byte, flags zns.Flag, lba int64, isParity bool, z int, s int64, futs *[]subIO, pending *[]pendingMD) {
	d := v.devForZone(dev, z)
	if d == nil {
		return
	}
	ss := int64(v.sectorSize)
	n := int64(len(data)) / ss
	physZone := int(pba / v.lt.physZoneSize)
	wp := d.Zone(physZone).WP // absolute
	if pba < wp {
		// Burned prefix: relocate [pba, min(wp, pba+n)).
		burn := min(wp-pba, n)
		*pending = append(*pending, v.relocationRecord(dev, data[:burn*ss], lba, isParity, z, s))
		data = data[burn*ss:]
		pba += burn
		lba += burn
		if len(data) == 0 {
			return
		}
	}
	if isParity {
		v.stats.waParityBytes.Add(int64(len(data)))
	} else {
		v.stats.waDataBytes.Add(int64(len(data)))
	}
	child := sp.Child(obs.OpDevWrite, dev, pba, int64(len(data)))
	fut := d.WriteSpan(child, pba, data, flags)
	*futs = append(*futs, subIO{dev: dev, fut: fut})
}

// relocationRecord builds the metadata append that relocates data (or a
// parity unit) to the affected device's metadata zone (§5.2, "remapped
// stripe unit").
func (v *Volume) relocationRecord(dev int, data []byte, lba int64, isParity bool, z int, s int64) pendingMD {
	n := int64(len(data)) / int64(v.sectorSize)
	typ := recRelocData
	start, end := lba, lba+n
	if isParity {
		typ = recRelocParity
		start = v.lt.stripeStart(z, s)
		end = start + n
	}
	return pendingMD{
		dev: dev,
		rec: &record{
			typ:      typ,
			startLBA: start,
			endLBA:   end,
			gen:      v.Generation(z),
			payload:  append([]byte(nil), data...),
		},
		isReloc:  true,
		isParity: isParity,
		z:        z,
		s:        s,
	}
}

// parityImageLocked computes the stripe's current parity bytes over the
// given intra-unit regions into a single allocation, treating unwritten
// unit tails as zeroes. Caller holds lz.mu (it reads the live buffer).
func (v *Volume) parityImageLocked(buf *stripeBuffer, regions []intraInterval) []byte {
	ss := int64(v.sectorSize)
	var total int64
	for _, reg := range regions {
		total += reg.b - reg.a
	}
	out := make([]byte, total*ss)
	pos := int64(0)
	for _, reg := range regions {
		v.parityInto(buf.data, buf.fill, reg.a, reg.b, out[pos*ss:(pos+reg.b-reg.a)*ss])
		pos += reg.b - reg.a
	}
	return out
}

// addReloc registers a relocated fragment (data or parity) in the
// in-memory maps and flags the zone as remapped. Lock order: lz.mu
// before relocMu, matching every other path.
func (v *Volume) addReloc(z int, e relocEntry, isParity bool, s int64) {
	v.stats.relocations.Add(1)
	if v.jrn.Enabled() {
		par := int64(0)
		if isParity {
			par = 1
		}
		v.jrn.Record(obs.EvRelocation, e.dev, z, e.endLBA-e.startLBA, par, 0, 0)
	}
	lz := v.zones[z]
	lz.mu.Lock()
	lz.remapped = true
	v.relocMu.Lock()
	if isParity {
		if v.parityReloc == nil {
			v.parityReloc = make(map[int]map[int64]relocEntry)
		}
		m := v.parityReloc[z]
		if m == nil {
			m = make(map[int64]relocEntry)
			v.parityReloc[z] = m
		}
		m[s] = e
	} else {
		v.reloc[z] = insertReloc(v.reloc[z], e)
	}
	v.relocMu.Unlock()
	v.bumpZCEpoch(z)
	lz.mu.Unlock()
}

// RelocationCount returns the number of live relocated fragments (data
// and parity) — the quantity the paper's user-modifiable rebuild
// threshold watches (§5.2).
func (v *Volume) RelocationCount() int {
	v.relocMu.Lock()
	defer v.relocMu.Unlock()
	n := 0
	for _, l := range v.reloc {
		n += len(l)
	}
	for _, m := range v.parityReloc {
		n += len(m)
	}
	return n
}

// insertReloc inserts e into the fragment list sorted by startLBA,
// replacing any fragment it fully shadows.
func insertReloc(list []relocEntry, e relocEntry) []relocEntry {
	out := list[:0]
	for _, f := range list {
		if f.startLBA >= e.startLBA && f.endLBA <= e.endLBA {
			continue // fully shadowed by the new fragment
		}
		out = append(out, f)
	}
	out = append(out, e)
	// Insertion sort by startLBA (lists are tiny).
	for i := len(out) - 1; i > 0 && out[i-1].startLBA > out[i].startLBA; i-- {
		out[i-1], out[i] = out[i], out[i-1]
	}
	return out
}

// persistUpTo implements the FUA dependency of Figure 6: ensure every LBA
// of the zone below end is durable, flushing exactly the devices that
// hold non-persisted stripe units.
func (v *Volume) persistUpTo(lz *logicalZone, end int64) error {
	lz.mu.Lock()
	from := lz.persistedWP
	lz.mu.Unlock()
	if from >= end {
		return nil
	}

	// Determine which devices hold sub-IOs in [from, end): the data
	// devices of the touched stripe units plus the parity devices of
	// every stripe overlapped (full-stripe parity or partial-parity
	// log). The bitmap is pooled — this runs on every FUA write.
	var need []bool
	if x := v.needPool.Get(); x != nil {
		need = x.([]bool)
		for i := range need {
			need[i] = false
		}
	} else {
		need = make([]bool, v.lt.n)
	}
	stripeSec := v.lt.stripeSectors()
	for s := from / stripeSec; s <= (end-1)/stripeSec; s++ {
		need[v.lt.parityDev(lz.idx, s)] = true
		lo := s * stripeSec
		hi := lo + stripeSec
		if lo < from {
			lo = from
		}
		if hi > end {
			hi = end
		}
		for u := int((lo % stripeSec) / v.lt.su); u <= int(((hi-1)%stripeSec)/v.lt.su); u++ {
			need[v.lt.dataDev(lz.idx, s, u)] = true
		}
	}
	var futs []subIO
	for i, n := range need {
		if !n {
			continue
		}
		if d := v.dev(i); d != nil {
			futs = append(futs, subIO{dev: i, fut: d.Flush()})
		}
	}
	v.needPool.Put(need)
	if err := v.awaitSubIOs(futs); err != nil {
		return err
	}
	lz.mu.Lock()
	if end > lz.persistedWP {
		lz.persistedWP = end
	}
	lz.mu.Unlock()
	return nil
}

// SubmitFlush flushes every device; once complete, all previously
// completed writes are durable.
func (v *Volume) SubmitFlush() *vclock.Future {
	sp := v.tracer.Begin(obs.OpFlush, 0, 0)
	// Snapshot submitted logical write pointers for the persistence
	// bitmaps: data claimed but not yet on the devices (a write mid
	// submission) is not covered by this flush.
	snaps := make([]int64, v.lt.numZones)
	for z, lz := range v.zones {
		lz.mu.Lock()
		snaps[z] = lz.submittedWP
		lz.mu.Unlock()
	}
	var futs []subIO
	for i := range v.devs {
		if d := v.dev(i); d != nil {
			child := sp.Child(obs.OpDevFlush, i, 0, 0)
			futs = append(futs, subIO{dev: i, fut: d.FlushSpan(child)})
		}
	}
	sp.Mark(obs.PhaseSubmit)
	result := v.clk.NewFuture()
	v.clk.Go(func() {
		if err := v.awaitSubIOs(futs); err != nil {
			sp.End(err)
			result.Complete(err)
			return
		}
		for z, lz := range v.zones {
			lz.mu.Lock()
			if snaps[z] > lz.persistedWP {
				lz.persistedWP = snaps[z]
			}
			lz.mu.Unlock()
		}
		v.fireHook("raizn.flush.done", obs.SrcLogical, -1, 0)
		sp.End(nil)
		result.Complete(nil)
	})
	return result
}

// PersistenceBitmap returns the persistence bitmap of zone z: one bit per
// stripe unit, set when that unit's written data is known durable (§5.3).
func (v *Volume) PersistenceBitmap(z int) []uint64 {
	lz := v.zones[z]
	lz.mu.Lock()
	persisted := lz.persistedWP
	lz.mu.Unlock()
	nSU := v.lt.zoneSectors() / v.lt.su
	bm := make([]uint64, (nSU+63)/64)
	for su := int64(0); su < nSU && su*v.lt.su < persisted; su++ {
		bm[su/64] |= 1 << (su % 64)
	}
	return bm
}
