package raizn

import (
	"errors"

	"raizn/internal/parity"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// SubmitWrite submits a sequential write of data at lba. Like a physical
// ZNS zone, a logical zone only accepts writes at its write pointer, and
// a write must not cross a logical zone boundary.
//
// The call validates, claims the zone range, and issues all sub-IOs
// (data, parity, partial-parity logs) before returning; the future
// completes when enough state is durable for the write's flags:
//
//   - no flags: data + (partial) parity submitted and transferred, i.e.
//     the write is tolerant of a single device failure (§5.1: completion
//     is not reported before partial parity is written);
//   - FUA / Preflush: additionally, the write and all preceding data in
//     the same logical zone are power-loss durable (§5.3).
//
// Lock discipline: device sub-IOs are issued under the zone lock (they
// must hit each physical zone in write-pointer order); metadata appends
// (partial parity, relocations) are prepared under the lock but issued
// after it is released, because metadata GC takes zone locks while
// checkpointing.
func (v *Volume) SubmitWrite(lba int64, data []byte, flags zns.Flag) *vclock.Future {
	if len(data) == 0 || len(data)%v.sectorSize != 0 {
		return v.clk.Completed(ErrUnaligned)
	}
	nSectors := int64(len(data) / v.sectorSize)
	if lba < 0 || lba+nSectors > v.lt.numSectors() {
		return v.clk.Completed(ErrOutOfRange)
	}
	z := v.lt.zoneOf(lba)
	off := lba - v.lt.zoneStart(z)
	if off+nSectors > v.lt.zoneSectors() {
		return v.clk.Completed(ErrZoneBoundary)
	}
	if v.ReadOnly() {
		return v.clk.Completed(ErrReadOnly)
	}

	lz := v.zones[z]
	lz.mu.Lock()
	for lz.resetting {
		lz.cond.Wait()
	}
	if lz.state == zns.ZoneFull {
		lz.mu.Unlock()
		return v.clk.Completed(ErrZoneFull)
	}
	if off != lz.wp {
		lz.mu.Unlock()
		return v.clk.Completed(ErrNotSequential)
	}
	if lz.state == zns.ZoneEmpty || lz.state == zns.ZoneClosed {
		if err := v.openZoneSlot(lz); err != nil {
			lz.mu.Unlock()
			return v.clk.Completed(err)
		}
	}
	lz.wp = off + nSectors
	full := lz.wp == v.lt.zoneSectors()
	v.stats.logicalWriteBytes.Add(int64(len(data)))

	futs, pending, err := v.issueWriteLocked(lz, off, data, flags)
	if full && err == nil {
		v.closeZoneSlot(lz, zns.ZoneFull)
	}
	lz.mu.Unlock()
	if err != nil {
		return v.clk.Completed(err)
	}
	futs = append(futs, v.issuePendingMD(pending)...)

	result := v.clk.NewFuture()
	end := off + nSectors
	v.clk.Go(func() {
		if err := v.awaitSubIOs(futs); err != nil {
			// A sub-IO failure that is not a tolerated device death
			// leaves the logical write pointer ahead of what the host
			// believes was written; fail stop rather than serve an
			// inconsistent volume.
			v.mu.Lock()
			v.readOnly = true
			v.mu.Unlock()
			result.Complete(err)
			return
		}
		if flags&(zns.FUA|zns.Preflush) != 0 {
			if err := v.persistUpTo(lz, end); err != nil {
				result.Complete(err)
				return
			}
		}
		result.Complete(nil)
	})
	return result
}

// subIO pairs a completion future with the device it went to, so device
// deaths can be folded into degraded mode instead of failing the write.
type subIO struct {
	dev    int
	fut    *vclock.Future
	repair *repairCtx // foreground reads: reconstruction fallback on a medium error
}

// repairCtx carries enough context to transparently re-serve a failed
// read piece by parity reconstruction (read-repair of latent sector
// errors). The reconstruction path issues plain device reads, so repair
// never nests.
type repairCtx struct {
	z    int
	s    int64
	u    int
	a, b int64
	dst  []byte
	wp   int64 // zone write pointer snapshot from the original read plan
}

// pendingMD is a metadata append prepared under a zone lock and issued
// after it is released.
type pendingMD struct {
	dev      int
	rec      *record
	flags    zns.Flag
	isReloc  bool // register a relocation entry after the append
	isParity bool // relocated parity rather than data
	useMeta  bool // header in per-block metadata (PPInlineMeta)
	z        int
	s        int64
}

// issuePendingMD performs the deferred metadata appends.
func (v *Volume) issuePendingMD(pending []pendingMD) []subIO {
	var futs []subIO
	for _, p := range pending {
		m := v.mdm(p.dev)
		if m == nil {
			continue // device failed: degraded
		}
		var fut *vclock.Future
		var pba int64
		var err error
		if p.useMeta {
			fut, pba, err = m.appendMeta(p.rec, p.flags)
		} else {
			fut, pba, err = m.append(p.rec, p.flags)
		}
		if err != nil {
			if errors.Is(err, zns.ErrDeviceFailed) {
				v.noteDeviceError(p.dev, err)
				continue
			}
			futs = append(futs, subIO{dev: p.dev, fut: v.clk.Completed(err)})
			continue
		}
		if p.isReloc {
			v.addReloc(p.z, relocEntry{
				startLBA: p.rec.startLBA, endLBA: p.rec.endLBA,
				dev: p.dev, pba: pba + 1, data: p.rec.payload,
			}, p.isParity, p.s)
		}
		futs = append(futs, subIO{dev: p.dev, fut: fut})
	}
	return futs
}

// mdm returns the metadata manager of device i, or nil.
func (v *Volume) mdm(i int) *mdManager {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.md[i]
}

// awaitSubIOs waits for all sub-IOs. A sub-IO that failed because its
// device died is tolerated (the write continues in degraded mode, §4.2);
// any other error, or a second device failure, is returned.
func (v *Volume) awaitSubIOs(futs []subIO) error {
	var firstErr error
	for _, s := range futs {
		err := s.fut.Wait()
		if err == nil {
			continue
		}
		if errors.Is(err, zns.ErrDeviceFailed) {
			v.noteDeviceError(s.dev, err)
			if v.ReadOnly() {
				return ErrReadOnly
			}
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// openZoneSlot charges one logical open-zone slot. Caller holds lz.mu.
func (v *Volume) openZoneSlot(lz *logicalZone) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.openCount >= v.maxOpen {
		return ErrTooManyOpen
	}
	v.openCount++
	lz.state = zns.ZoneOpen
	return nil
}

// closeZoneSlot releases the open slot when a zone leaves the open state.
// Caller holds lz.mu.
func (v *Volume) closeZoneSlot(lz *logicalZone, to zns.ZoneState) {
	v.mu.Lock()
	if lz.state == zns.ZoneOpen {
		v.openCount--
	}
	lz.state = to
	v.mu.Unlock()
}

// issueWriteLocked splits [off, off+len) of zone lz into per-stripe work:
// buffer the data, issue data sub-IOs, and either full parity (stripe
// complete) or a partial-parity log record. Caller holds lz.mu.
func (v *Volume) issueWriteLocked(lz *logicalZone, off int64, data []byte, flags zns.Flag) ([]subIO, []pendingMD, error) {
	var futs []subIO
	var pending []pendingMD
	ss := int64(v.sectorSize)
	stripeSec := v.lt.stripeSectors()

	for len(data) > 0 {
		s := off / stripeSec
		inStripe := off % stripeSec
		n := stripeSec - inStripe
		if avail := int64(len(data)) / ss; n > avail {
			n = avail
		}
		chunk := data[:n*ss]

		buf, err := v.stripeBufferLocked(lz, s)
		if err != nil {
			return futs, pending, err
		}
		if buf.fill != inStripe {
			return futs, pending, ErrInconsistent // buffer out of sync with zone WP
		}
		copy(buf.data[inStripe*ss:], chunk)
		buf.fill = inStripe + n

		// Data sub-IOs, one per touched stripe unit.
		v.issueDataLocked(lz.idx, s, inStripe, chunk, flags, &futs, &pending)

		if buf.fill == stripeSec {
			// Stripe complete: write the full parity unit and recycle
			// the buffer.
			if v.cfg.ParityMode == PPZRWA {
				v.issueZRWAParityLocked(lz, s, buf, flags, &futs)
			} else {
				v.issueParityLocked(lz, s, buf, flags, &futs, &pending)
			}
			v.recordStripeChecksumsLocked(lz, s, buf, &pending)
			delete(lz.active, s)
			buf.stripe = -1
			buf.fill = 0
			lz.free = append(lz.free, buf)
			lz.cond.Broadcast()
		} else if v.cfg.ParityMode == PPZRWA {
			// Stripe still partial: update the parity prefix in place
			// through the random write area (§5.4).
			v.issueZRWAParityLocked(lz, s, buf, flags, &futs)
		} else {
			// Stripe still partial: log partial parity for the region
			// this write affected (§5.1).
			if p := v.partialParityLocked(lz, s, buf, inStripe, inStripe+n, flags); p != nil {
				pending = append(pending, *p)
			}
		}

		off += n
		data = data[n*ss:]
	}
	return futs, pending, nil
}

// stripeBufferLocked returns the buffer accumulating stripe s, allocating
// from the pool (and blocking while the pool is empty — paper §5.1 notes
// this backpressure). Caller holds lz.mu.
func (v *Volume) stripeBufferLocked(lz *logicalZone, s int64) (*stripeBuffer, error) {
	if b, ok := lz.active[s]; ok {
		return b, nil
	}
	for len(lz.free) == 0 {
		lz.cond.Wait()
	}
	b := lz.free[len(lz.free)-1]
	lz.free = lz.free[:len(lz.free)-1]
	b.stripe = s
	b.fill = 0
	lz.active[s] = b
	return b, nil
}

// issueDataLocked writes the data chunk covering zone-relative stripe
// offsets [inStripe, inStripe+len) of stripe s to the owning devices.
func (v *Volume) issueDataLocked(z int, s, inStripe int64, chunk []byte, flags zns.Flag, futs *[]subIO, pending *[]pendingMD) {
	ss := int64(v.sectorSize)
	for len(chunk) > 0 {
		u := int(inStripe / v.lt.su)
		intra := inStripe % v.lt.su
		n := v.lt.su - intra
		if avail := int64(len(chunk)) / ss; n > avail {
			n = avail
		}
		dev := v.lt.dataDev(z, s, u)
		pba := int64(z)*v.lt.physZoneSize + s*v.lt.su + intra
		lbaStart := v.lt.zoneStart(z) + s*v.lt.stripeSectors() + inStripe
		v.issueDeviceWrite(dev, pba, chunk[:n*ss], flags, lbaStart, false, z, s, futs, pending)
		chunk = chunk[n*ss:]
		inStripe += n
	}
}

// issueDeviceWrite sends one device write, transparently relocating (all
// or part of) it to the device's metadata zone when the target PBA range
// was burned by a crash (below the physical write pointer and thus
// immutable, §5.2). Failed devices are skipped (degraded write).
func (v *Volume) issueDeviceWrite(dev int, pba int64, data []byte, flags zns.Flag, lba int64, isParity bool, z int, s int64, futs *[]subIO, pending *[]pendingMD) {
	d := v.devForZone(dev, z)
	if d == nil {
		return
	}
	ss := int64(v.sectorSize)
	n := int64(len(data)) / ss
	physZone := int(pba / v.lt.physZoneSize)
	wp := d.Zone(physZone).WP // absolute
	if pba < wp {
		// Burned prefix: relocate [pba, min(wp, pba+n)).
		burn := minI64(wp-pba, n)
		*pending = append(*pending, v.relocationRecord(dev, data[:burn*ss], lba, isParity, z, s))
		data = data[burn*ss:]
		pba += burn
		lba += burn
		if len(data) == 0 {
			return
		}
	}
	fut := d.Write(pba, data, flags)
	*futs = append(*futs, subIO{dev: dev, fut: fut})
}

// relocationRecord builds the metadata append that relocates data (or a
// parity unit) to the affected device's metadata zone (§5.2, "remapped
// stripe unit").
func (v *Volume) relocationRecord(dev int, data []byte, lba int64, isParity bool, z int, s int64) pendingMD {
	n := int64(len(data)) / int64(v.sectorSize)
	typ := recRelocData
	start, end := lba, lba+n
	if isParity {
		typ = recRelocParity
		start = v.lt.stripeStart(z, s)
		end = start + n
	}
	return pendingMD{
		dev: dev,
		rec: &record{
			typ:      typ,
			startLBA: start,
			endLBA:   end,
			gen:      v.Generation(z),
			payload:  append([]byte(nil), data...),
		},
		isReloc:  true,
		isParity: isParity,
		z:        z,
		s:        s,
	}
}

// issueParityLocked computes and writes the full parity unit of a
// completed stripe from its buffer.
func (v *Volume) issueParityLocked(lz *logicalZone, s int64, buf *stripeBuffer, flags zns.Flag, futs *[]subIO, pending *[]pendingMD) {
	ss := int64(v.sectorSize)
	suBytes := v.lt.su * ss
	units := make([][]byte, v.lt.d)
	for u := range units {
		units[u] = buf.data[int64(u)*suBytes : int64(u+1)*suBytes]
	}
	p := parity.Encode(units...)
	dev := v.lt.parityDev(lz.idx, s)
	v.stats.fullParityWrites.Add(1)
	v.issueDeviceWrite(dev, v.lt.parityPBA(lz.idx, s), p, flags, 0, true, lz.idx, s, futs, pending)
}

// partialParityLocked builds the partial-parity log record for a write
// covering zone-relative stripe offsets [a, b) of the (still partial)
// stripe s. The log goes to the partial-parity metadata zone of the
// device that will eventually hold the stripe's parity (Table 1). Caller
// holds lz.mu; the append itself happens later.
func (v *Volume) partialParityLocked(lz *logicalZone, s int64, buf *stripeBuffer, a, b int64, flags zns.Flag) *pendingMD {
	dev := v.lt.parityDev(lz.idx, s)
	if v.mdm(dev) == nil {
		return nil // parity device failed: data units carry the write
	}
	regions := v.lt.intraRegions(a, b)
	payload := v.parityImageLocked(buf, regions)
	v.stats.partialParityLogs.Add(1)
	return &pendingMD{
		dev: dev,
		rec: &record{
			typ:      recPartialParity,
			startLBA: v.lt.stripeStart(lz.idx, s) + a,
			endLBA:   v.lt.stripeStart(lz.idx, s) + b,
			gen:      v.Generation(lz.idx),
			payload:  payload,
		},
		useMeta: v.cfg.ParityMode == PPInlineMeta,
		z:       lz.idx,
		s:       s,
	}
}

// parityImageLocked computes the stripe's current parity bytes over the
// given intra-unit regions, treating unwritten unit tails as zeroes.
func (v *Volume) parityImageLocked(buf *stripeBuffer, regions []intraInterval) []byte {
	ss := int64(v.sectorSize)
	fills := v.lt.unitFills(buf.fill)
	var out []byte
	for _, reg := range regions {
		img := make([]byte, (reg.b-reg.a)*ss)
		for u := 0; u < v.lt.d; u++ {
			// Unit u contributes bytes for intra offsets < fills[u].
			hi := fills[u]
			if hi <= reg.a {
				continue
			}
			if hi > reg.b {
				hi = reg.b
			}
			unitBase := int64(u) * v.lt.su * ss
			src := buf.data[unitBase+reg.a*ss : unitBase+hi*ss]
			parity.XORInto(img[:len(src)], src)
		}
		out = append(out, img...)
	}
	return out
}

// addReloc registers a relocated fragment (data or parity) in the
// in-memory maps and flags the zone as remapped. Lock order: lz.mu
// before relocMu, matching every other path.
func (v *Volume) addReloc(z int, e relocEntry, isParity bool, s int64) {
	v.stats.relocations.Add(1)
	lz := v.zones[z]
	lz.mu.Lock()
	lz.remapped = true
	v.relocMu.Lock()
	if isParity {
		if v.parityReloc == nil {
			v.parityReloc = make(map[int]map[int64]relocEntry)
		}
		m := v.parityReloc[z]
		if m == nil {
			m = make(map[int64]relocEntry)
			v.parityReloc[z] = m
		}
		m[s] = e
	} else {
		v.reloc[z] = insertReloc(v.reloc[z], e)
	}
	v.relocMu.Unlock()
	lz.mu.Unlock()
}

// RelocationCount returns the number of live relocated fragments (data
// and parity) — the quantity the paper's user-modifiable rebuild
// threshold watches (§5.2).
func (v *Volume) RelocationCount() int {
	v.relocMu.Lock()
	defer v.relocMu.Unlock()
	n := 0
	for _, l := range v.reloc {
		n += len(l)
	}
	for _, m := range v.parityReloc {
		n += len(m)
	}
	return n
}

// insertReloc inserts e into the fragment list sorted by startLBA,
// replacing any fragment it fully shadows.
func insertReloc(list []relocEntry, e relocEntry) []relocEntry {
	out := list[:0]
	for _, f := range list {
		if f.startLBA >= e.startLBA && f.endLBA <= e.endLBA {
			continue // fully shadowed by the new fragment
		}
		out = append(out, f)
	}
	out = append(out, e)
	// Insertion sort by startLBA (lists are tiny).
	for i := len(out) - 1; i > 0 && out[i-1].startLBA > out[i].startLBA; i-- {
		out[i-1], out[i] = out[i], out[i-1]
	}
	return out
}

// persistUpTo implements the FUA dependency of Figure 6: ensure every LBA
// of the zone below end is durable, flushing exactly the devices that
// hold non-persisted stripe units.
func (v *Volume) persistUpTo(lz *logicalZone, end int64) error {
	lz.mu.Lock()
	from := lz.persistedWP
	lz.mu.Unlock()
	if from >= end {
		return nil
	}

	// Determine which devices hold sub-IOs in [from, end): the data
	// devices of the touched stripe units plus the parity devices of
	// every stripe overlapped (full-stripe parity or partial-parity
	// log).
	need := make([]bool, v.lt.n)
	stripeSec := v.lt.stripeSectors()
	for s := from / stripeSec; s <= (end-1)/stripeSec; s++ {
		need[v.lt.parityDev(lz.idx, s)] = true
		lo := s * stripeSec
		hi := lo + stripeSec
		if lo < from {
			lo = from
		}
		if hi > end {
			hi = end
		}
		for u := int((lo % stripeSec) / v.lt.su); u <= int(((hi-1)%stripeSec)/v.lt.su); u++ {
			need[v.lt.dataDev(lz.idx, s, u)] = true
		}
	}
	var futs []subIO
	for i, n := range need {
		if !n {
			continue
		}
		if d := v.dev(i); d != nil {
			futs = append(futs, subIO{dev: i, fut: d.Flush()})
		}
	}
	if err := v.awaitSubIOs(futs); err != nil {
		return err
	}
	lz.mu.Lock()
	if end > lz.persistedWP {
		lz.persistedWP = end
	}
	lz.mu.Unlock()
	return nil
}

// SubmitFlush flushes every device; once complete, all previously
// completed writes are durable.
func (v *Volume) SubmitFlush() *vclock.Future {
	// Snapshot logical write pointers for the persistence bitmaps.
	snaps := make([]int64, v.lt.numZones)
	for z, lz := range v.zones {
		lz.mu.Lock()
		snaps[z] = lz.wp
		lz.mu.Unlock()
	}
	var futs []subIO
	for i := range v.devs {
		if d := v.dev(i); d != nil {
			futs = append(futs, subIO{dev: i, fut: d.Flush()})
		}
	}
	result := v.clk.NewFuture()
	v.clk.Go(func() {
		if err := v.awaitSubIOs(futs); err != nil {
			result.Complete(err)
			return
		}
		for z, lz := range v.zones {
			lz.mu.Lock()
			if snaps[z] > lz.persistedWP {
				lz.persistedWP = snaps[z]
			}
			lz.mu.Unlock()
		}
		result.Complete(nil)
	})
	return result
}

// PersistenceBitmap returns the persistence bitmap of zone z: one bit per
// stripe unit, set when that unit's written data is known durable (§5.3).
func (v *Volume) PersistenceBitmap(z int) []uint64 {
	lz := v.zones[z]
	lz.mu.Lock()
	persisted := lz.persistedWP
	lz.mu.Unlock()
	nSU := v.lt.zoneSectors() / v.lt.su
	bm := make([]uint64, (nSU+63)/64)
	for su := int64(0); su < nSU && su*v.lt.su < persisted; su++ {
		bm[su/64] |= 1 << (su % 64)
	}
	return bm
}
