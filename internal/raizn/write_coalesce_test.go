package raizn

import (
	"bytes"
	"reflect"
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Differential tests: the coalesced write path (default) and the legacy
// per-sub-IO path (Config.LegacyWritePath) must be observationally
// identical — same bytes, same zone states, same persistence bitmaps,
// same crash-recovery outcome. Only timing and device command counts may
// differ, so every comparison here is value-based and the two variants
// run on separate simulation clocks.

func legacyConfig() Config {
	cfg := DefaultConfig()
	cfg.LegacyWritePath = true
	return cfg
}

// diffWriteSizes is a deterministic per-zone mix of write shapes:
// sub-unit, unit-aligned, stripe-completing, exact-stripe (full-stripe
// bypass), stripe-spanning, and multi-stripe writes, ending in a partial
// tail. Zone 4 additionally fills to capacity to exercise the ZoneFull
// transition.
func diffWriteSizes(z int, fillZone bool) []int64 {
	sizes := []int64{4, 8, 52, 64, 12, 116, 4, 60, 128, 20} // sums to 468 < 512
	if z == 4 && fillZone {
		sizes = append(sizes, 44) // 512: fills the zone
	}
	return sizes
}

// runDiffWorkload drives one writer goroutine per logical zone, each
// pipelining its zone's write sequence (futures collected, then awaited)
// so multiple tickets are in flight per zone while zones race on the
// shared devices. With fua set, every 4th write carries FUA so the
// persistence bitmap has deterministic structure before any flush. (The
// crash differential runs without FUA: a FUA write flushes the whole
// device, and the device refuses to lose persisted sectors to a power
// cut, so any FUA would defeat the crash cuts.)
func runDiffWorkload(t *testing.T, c *vclock.Clock, v *Volume, fillZone, fua bool) {
	t.Helper()
	wg := c.NewWaitGroup()
	for z := 0; z < v.NumZones(); z++ {
		z := z
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			lba := int64(z) * v.ZoneSectors()
			var futs []*vclock.Future
			for i, n := range diffWriteSizes(z, fillZone) {
				var fl zns.Flag
				if fua && i%4 == 1 {
					fl = zns.FUA
				}
				futs = append(futs, v.SubmitWrite(lba, lbaPattern(v, lba, int(n)), fl))
				lba += n
			}
			if err := vclock.WaitAll(futs...); err != nil {
				t.Errorf("zone %d workload: %v", z, err)
			}
		})
	}
	wg.Wait()
}

type volSnapshot struct {
	zones   []ZoneDesc
	data    [][]byte // full readback below each zone's WP
	bitmaps [][]uint64
	relocs  int
}

func snapshotVolume(t *testing.T, v *Volume) volSnapshot {
	t.Helper()
	zs := v.ZoneSectors()
	snap := volSnapshot{relocs: v.RelocationCount()}
	for z := 0; z < v.NumZones(); z++ {
		zd := v.Zone(z)
		snap.zones = append(snap.zones, zd)
		n := zd.WP - int64(z)*zs
		buf := make([]byte, n*int64(v.SectorSize()))
		if n > 0 {
			if err := v.Read(int64(z)*zs, buf); err != nil {
				t.Fatalf("zone %d readback (%d sectors): %v", z, n, err)
			}
		}
		snap.data = append(snap.data, buf)
		snap.bitmaps = append(snap.bitmaps, v.PersistenceBitmap(z))
	}
	return snap
}

func compareSnapshots(t *testing.T, what string, coalesced, legacy volSnapshot) {
	t.Helper()
	for z := range coalesced.zones {
		if coalesced.zones[z] != legacy.zones[z] {
			t.Errorf("%s: zone %d desc differs: coalesced %+v, legacy %+v",
				what, z, coalesced.zones[z], legacy.zones[z])
		}
		if !bytes.Equal(coalesced.data[z], legacy.data[z]) {
			t.Errorf("%s: zone %d readback differs between write paths", what, z)
		}
		if !reflect.DeepEqual(coalesced.bitmaps[z], legacy.bitmaps[z]) {
			t.Errorf("%s: zone %d persistence bitmap differs: coalesced %v, legacy %v",
				what, z, coalesced.bitmaps[z], legacy.bitmaps[z])
		}
	}
	if coalesced.relocs != legacy.relocs {
		t.Errorf("%s: relocation count differs: coalesced %d, legacy %d",
			what, coalesced.relocs, legacy.relocs)
	}
}

// diffStats compares the counters that identical workloads must drive
// identically regardless of sub-IO merging.
func diffStats(t *testing.T, what string, coalesced, legacy Stats) {
	t.Helper()
	type pair struct {
		name string
		a, b int64
	}
	for _, p := range []pair{
		{"LogicalWriteBytes", coalesced.LogicalWriteBytes, legacy.LogicalWriteBytes},
		{"FullParityWrites", coalesced.FullParityWrites, legacy.FullParityWrites},
		{"PartialParityLogs", coalesced.PartialParityLogs, legacy.PartialParityLogs},
		{"ChecksumRecords", coalesced.ChecksumRecords, legacy.ChecksumRecords},
		{"Relocations", coalesced.Relocations, legacy.Relocations},
	} {
		if p.a != p.b {
			t.Errorf("%s: %s differs: coalesced %d, legacy %d", what, p.name, p.a, p.b)
		}
	}
}

// devWriteSpanStats walks every retained root span and totals the
// device-write sub-spans: count is how many dev-write commands were
// traced; merged is how many sub-IOs vectored commands absorbed (a
// dev-write span carrying k scatter-gather segments saved k-1 commands),
// which must equal the CoalescedSubWrites counter when the tracer
// covered the whole workload.
func devWriteSpanStats(roots []*obs.Span) (count, merged int64) {
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if s.Op == obs.OpDevWrite {
			count++
			if n := s.Segs(); n > 1 {
				merged += int64(n - 1)
			}
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, s := range roots {
		walk(s)
	}
	return count, merged
}

// TestWritePathDifferentialConcurrent races one pipelined writer per
// zone on both paths and demands identical logical outcomes.
func TestWritePathDifferentialConcurrent(t *testing.T) {
	var snaps [2]volSnapshot
	var stats [2]Stats
	var spanCount, spanMerged [2]int64
	for i, cfg := range []Config{DefaultConfig(), legacyConfig()} {
		i, cfg := i, cfg
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			tr := obs.NewTracer(c, obs.Config{})
			tr.Enable()
			cfg.Tracer = tr
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			runDiffWorkload(t, c, v, true, true)
			spanCount[i], spanMerged[i] = devWriteSpanStats(tr.Snapshot())
			snaps[i] = snapshotVolume(t, v)
			stats[i] = v.Stats()

			// Flush and re-check: full persistence on both paths.
			if err := v.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			for z := 0; z < v.NumZones(); z++ {
				zd := v.Zone(z)
				if zd.PersistedWP != zd.WP {
					t.Errorf("zone %d: PersistedWP %d != WP %d after flush", z, zd.PersistedWP, zd.WP)
				}
			}
		})
	}
	compareSnapshots(t, "concurrent", snaps[0], snaps[1])
	diffStats(t, "concurrent", stats[0], stats[1])
	if stats[0].CoalescedSubWrites == 0 {
		t.Error("coalesced path merged no sub-IOs")
	}
	if stats[1].CoalescedSubWrites != 0 {
		t.Errorf("legacy path reported %d coalesced sub-IOs", stats[1].CoalescedSubWrites)
	}
	// The traced sub-IO view must agree with the counters on both paths:
	// segment counts recorded on dev-write spans account for exactly the
	// sub-IOs the stat says were merged, and the legacy path's per-sub-IO
	// commands show up as strictly more (uncoalesced) dev-write spans.
	for i, what := range []string{"coalesced", "legacy"} {
		if spanCount[i] == 0 {
			t.Errorf("%s: no dev-write spans traced", what)
		}
		if spanMerged[i] != stats[i].CoalescedSubWrites {
			t.Errorf("%s: span segment surplus %d != CoalescedSubWrites %d",
				what, spanMerged[i], stats[i].CoalescedSubWrites)
		}
	}
	if spanCount[1] != spanCount[0]+stats[0].CoalescedSubWrites {
		t.Errorf("legacy traced %d dev-writes, want coalesced %d + merged %d",
			spanCount[1], spanCount[0], stats[0].CoalescedSubWrites)
	}
}

// TestWritePathDifferentialCrash cuts the same per-device zone fills out
// of both variants' devices mid-workload debris and compares the
// recovered state, then keeps writing over the crash debris (which
// drives the §5.2 burned-prefix relocation through the coalescing
// submit planner) and compares again.
func TestWritePathDifferentialCrash(t *testing.T) {
	var before, after [2]volSnapshot
	for i, cfg := range []Config{DefaultConfig(), legacyConfig()} {
		i, cfg := i, cfg
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			runDiffWorkload(t, c, v, true, false)

			// Identical cuts on both variants: persist everything except
			// data zone 1 on devices 1 and 2 (two holes per stripe — no
			// redundancy to repair from, so recovery must truncate) and
			// device 3's data zone 2 (single hole, repairable). The
			// truncated zone's uncut peers keep debris beyond the
			// recovered write pointer.
			for di, d := range devs {
				m := map[int]int64{}
				for z := 0; z < d.Config().NumZones; z++ {
					m[z] = d.Zone(z).WP - d.ZoneStart(z)
				}
				if (di == 1 || di == 2) && m[1] > 24 {
					m[1] = 24
				}
				if di == 3 && m[2] > 40 {
					m[2] = 40
				}
				d.PowerLossAt(m)
			}
			v2, err := Mount(c, devs, cfg)
			if err != nil {
				t.Fatalf("Mount after crash: %v", err)
			}
			before[i] = snapshotVolume(t, v2)

			// Continue writing into every recovered zone tail.
			zs := v2.ZoneSectors()
			for z := 0; z < v2.NumZones(); z++ {
				zd := v2.Zone(z)
				if zd.State == zns.ZoneFull {
					continue
				}
				rel := zd.WP - int64(z)*zs
				n := int64(32)
				if rel+n > zs {
					n = zs - rel
				}
				if n <= 0 {
					continue
				}
				mustWriteV(t, v2, zd.WP, int(n), 0)
			}
			after[i] = snapshotVolume(t, v2)
		})
	}
	compareSnapshots(t, "post-crash", before[0], before[1])
	compareSnapshots(t, "post-crash-write", after[0], after[1])
	if after[0].relocs == 0 {
		t.Error("writing over crash debris produced no relocations; burn-split path untested")
	}
}

// TestWritePathDifferentialDegradedAndScrub checks that scrub results
// and degraded-mode reads/writes are identical on both paths.
func TestWritePathDifferentialDegradedAndScrub(t *testing.T) {
	var snaps [2]volSnapshot
	var degradedReads [2]int64
	var verified [2]int
	for i, cfg := range []Config{DefaultConfig(), legacyConfig()} {
		i, cfg := i, cfg
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			runDiffWorkload(t, c, v, true, true)
			if err := v.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}

			// Scrub every complete stripe of zone 0 while healthy.
			wp := v.Zone(0).WP
			for s := int64(0); (s+1)*v.StripeSectors() <= wp; s++ {
				res, err := v.ScrubStripe(0, s, true)
				if err != nil {
					t.Fatalf("ScrubStripe(0, %d): %v", s, err)
				}
				if res.Mismatch {
					t.Errorf("ScrubStripe(0, %d): mismatch on healthy volume", s)
				}
				if res.Verified {
					verified[i]++
				}
			}

			// Degrade and keep writing into the open zone tails.
			if err := v.FailDevice(1); err != nil {
				t.Fatalf("FailDevice: %v", err)
			}
			zs := v.ZoneSectors()
			for z := 0; z < 3; z++ {
				zd := v.Zone(z)
				rel := zd.WP - int64(z)*zs
				if rel+16 <= zs {
					mustWriteV(t, v, zd.WP, 16, 0)
				}
			}
			snaps[i] = snapshotVolume(t, v) // full readback reconstructs through parity
			degradedReads[i] = v.Stats().DegradedReads
		})
	}
	compareSnapshots(t, "degraded", snaps[0], snaps[1])
	if verified[0] != verified[1] {
		t.Errorf("scrub verified %d stripes coalesced, %d legacy", verified[0], verified[1])
	}
	if verified[0] == 0 {
		t.Error("scrub verified no stripes")
	}
	if degradedReads[0] != degradedReads[1] {
		t.Errorf("DegradedReads differ: coalesced %d, legacy %d", degradedReads[0], degradedReads[1])
	}
	if degradedReads[0] == 0 {
		t.Error("degraded snapshot took no reconstructed reads")
	}
}

// TestWritePathDifferentialZRWA repeats the differential on PPZRWA-mode
// devices, where complete stripes update parity in place through the
// zone random-write area and must never be merged into a sequential run.
func TestWritePathDifferentialZRWA(t *testing.T) {
	var snaps [2]volSnapshot
	var stats [2]Stats
	var spanMerged [2]int64
	for i, legacy := range []bool{false, true} {
		i, legacy := i, legacy
		c := vclock.New()
		c.Run(func() {
			devs := make([]*zns.Device, 5)
			for j := range devs {
				devs[j] = zns.NewDevice(c, extDevConfig())
			}
			cfg := DefaultConfig()
			cfg.ParityMode = PPZRWA
			cfg.LegacyWritePath = legacy
			tr := obs.NewTracer(c, obs.Config{})
			tr.Enable()
			cfg.Tracer = tr
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			// No zone fills: a partial tail stripe's in-place parity
			// prefix occupies the zone's last physical unit, and the
			// simulated device then (correctly) refuses further ZRWA
			// rewrites once the zone is at capacity.
			runDiffWorkload(t, c, v, false, true)
			_, spanMerged[i] = devWriteSpanStats(tr.Snapshot())
			snaps[i] = snapshotVolume(t, v)
			stats[i] = v.Stats()
		})
	}
	compareSnapshots(t, "zrwa", snaps[0], snaps[1])
	diffStats(t, "zrwa", stats[0], stats[1])
	for i, what := range []string{"coalesced", "legacy"} {
		if spanMerged[i] != stats[i].CoalescedSubWrites {
			t.Errorf("zrwa %s: span segment surplus %d != CoalescedSubWrites %d",
				what, spanMerged[i], stats[i].CoalescedSubWrites)
		}
	}
	if stats[0].ZRWAParityWrites != stats[1].ZRWAParityWrites {
		t.Errorf("ZRWAParityWrites differ: coalesced %d, legacy %d",
			stats[0].ZRWAParityWrites, stats[1].ZRWAParityWrites)
	}
	if stats[0].ZRWAParityWrites == 0 {
		t.Error("workload drove no in-place parity updates")
	}
}
