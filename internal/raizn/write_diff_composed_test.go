package raizn

import (
	"testing"

	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// TestWritePathDifferentialComposedChaos drives both write paths through
// one composed chaos schedule — racing per-zone writers, silent rot plus
// a repairing scrub, a crash with identical per-device cuts, a mid-life
// device failure, degraded writes over the crash debris, metadata GC and
// a zone reset+rewrite — and demands identical logical outcomes at both
// checkpoints (post-crash recovery and final state). This composes the
// separate concurrent/crash/degraded/scrub differentials into one
// schedule so cross-feature interactions get the same coverage.
func TestWritePathDifferentialComposedChaos(t *testing.T) {
	var postCrash, final [2]volSnapshot
	var degradedReads [2]int64
	for i, cfg := range []Config{DefaultConfig(), legacyConfig()} {
		i, cfg := i, cfg
		c := vclock.New()
		c.Run(func() {
			devs := newTestDevices(c, 5)
			v, err := Create(c, devs, cfg)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}

			// Phase 1: concurrent per-zone writers race on the devices.
			runDiffWorkload(t, c, v, false, false)
			if err := v.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}

			// Phase 2: silent rot in zone 0 stripe 0, repaired by a scrub.
			if err := devs[1].CorruptSector(5); err != nil {
				t.Fatalf("corrupt: %v", err)
			}
			res, err := v.ScrubStripe(0, 0, true)
			if err != nil {
				t.Fatalf("ScrubStripe: %v", err)
			}
			if !res.Mismatch {
				t.Error("scrub missed the injected rot")
			}

			// Phase 3: crash with identical cuts on both variants: two
			// holes in zone 1 (unrepairable, forces truncation + debris),
			// one in zone 2 (parity-repairable).
			for di, d := range devs {
				m := map[int]int64{}
				for z := 0; z < d.Config().NumZones; z++ {
					m[z] = d.Zone(z).WP - d.ZoneStart(z)
				}
				if (di == 1 || di == 2) && m[1] > 24 {
					m[1] = 24
				}
				if di == 3 && m[2] > 40 {
					m[2] = 40
				}
				d.PowerLossAt(m)
			}
			v2, err := Mount(c, devs, cfg)
			if err != nil {
				t.Fatalf("Mount after crash: %v", err)
			}
			postCrash[i] = snapshotVolume(t, v2)

			// Phase 4: device failure, then degraded writes over the
			// debris (burn-split relocations on a degraded array).
			if err := v2.FailDevice(2); err != nil {
				t.Fatalf("FailDevice: %v", err)
			}
			zs := v2.ZoneSectors()
			for z := 0; z < v2.NumZones(); z++ {
				zd := v2.Zone(z)
				if zd.State == zns.ZoneFull {
					continue
				}
				rel := zd.WP - int64(z)*zs
				n := int64(24)
				if rel+n > zs {
					n = zs - rel
				}
				if n <= 0 {
					continue
				}
				mustWriteV(t, v2, zd.WP, int(n), 0)
			}

			// Phase 5: metadata GC, then reset + rewrite + flush of zone 1.
			if err := v2.Maintain(); err != nil {
				t.Fatalf("Maintain: %v", err)
			}
			if err := v2.ResetZone(1); err != nil {
				t.Fatalf("ResetZone: %v", err)
			}
			mustWriteV(t, v2, zs, 40, 0)
			if err := v2.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			final[i] = snapshotVolume(t, v2)
			degradedReads[i] = v2.Stats().DegradedReads
		})
	}
	compareSnapshots(t, "post-crash", postCrash[0], postCrash[1])
	compareSnapshots(t, "final", final[0], final[1])
	if degradedReads[0] != degradedReads[1] {
		t.Errorf("DegradedReads differ: coalesced %d, legacy %d", degradedReads[0], degradedReads[1])
	}
	if degradedReads[0] == 0 {
		t.Error("composed schedule took no reconstructed reads")
	}
	if final[0].relocs == 0 {
		t.Error("composed schedule produced no relocations; burn-split path untested")
	}
}
