package raizn

import (
	"raizn/internal/obs"
	"raizn/internal/parity"
	"raizn/internal/ppengine"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// This file keeps the pre-coalescing write path, selected with
// Config.LegacyWritePath. It issues every stripe-unit sub-IO as its own
// device command and computes parity under the zone lock. It exists as
// the differential-testing and benchmarking baseline for the coalesced
// three-phase path in write.go; new features only need to land there.

// runWriteLegacy is the uncoalesced equivalent of the plan/compute/submit
// pipeline. Caller holds lz.mu (with lz.wp already advanced); the call
// releases it.
func (v *Volume) runWriteLegacy(sp *obs.Span, lz *logicalZone, off, end int64, full bool, data []byte, flags zns.Flag) *vclock.Future {
	futs, pending, err := v.issueWriteLocked(sp, lz, off, data, flags)
	if end > lz.submittedWP {
		lz.submittedWP = end
	}
	if full && err == nil {
		v.closeZoneSlot(lz, zns.ZoneFull)
		// Every stripe of the zone is complete: sweep all PP state.
		v.eng.ZoneReset(lz.idx)
	}
	lz.mu.Unlock()
	if err != nil {
		sp.End(err)
		return v.clk.Completed(err)
	}
	v.fireHook("raizn.write.submit", obs.SrcLogical, lz.idx, end)
	futs = v.issuePendingMD(sp, pending, futs)
	sp.Mark(obs.PhaseSubmit)
	v.fireHook("raizn.write.md", obs.SrcLogical, lz.idx, end)

	result := v.clk.NewFuture()
	v.clk.Go(func() {
		if err := v.awaitSubIOs(futs); err != nil {
			v.mu.Lock()
			v.readOnly = true
			v.mu.Unlock()
			sp.End(err)
			result.Complete(err)
			return
		}
		if flags&(zns.FUA|zns.Preflush) != 0 {
			if err := v.persistUpTo(lz, end); err != nil {
				sp.End(err)
				result.Complete(err)
				return
			}
		}
		v.fireHook("raizn.write.done", obs.SrcLogical, lz.idx, end)
		sp.End(nil)
		result.Complete(nil)
	})
	return result
}

// issueWriteLocked splits [off, off+len) of zone lz into per-stripe work:
// buffer the data, issue data sub-IOs, and either full parity (stripe
// complete) or a partial-parity log record. Caller holds lz.mu.
func (v *Volume) issueWriteLocked(sp *obs.Span, lz *logicalZone, off int64, data []byte, flags zns.Flag) ([]subIO, []pendingMD, error) {
	var futs []subIO
	var pending []pendingMD
	ss := int64(v.sectorSize)
	stripeSec := v.lt.stripeSectors()

	for len(data) > 0 {
		s := off / stripeSec
		inStripe := off % stripeSec
		n := stripeSec - inStripe
		if avail := int64(len(data)) / ss; n > avail {
			n = avail
		}
		chunk := data[:n*ss]

		buf, err := v.stripeBufferLocked(lz, s, inStripe)
		if err != nil {
			return futs, pending, err
		}
		copy(buf.data[inStripe*ss:], chunk)
		buf.fill = inStripe + n

		// Data sub-IOs, one per touched stripe unit.
		v.issueDataLocked(sp, lz.idx, s, inStripe, chunk, flags, &futs, &pending)

		if buf.fill == stripeSec {
			// Stripe complete: write the full parity unit and recycle
			// the buffer.
			if v.eng.InPlaceParityPrefix() {
				v.issueZRWAParityLocked(sp, lz, s, buf, flags, &futs)
			} else {
				v.issueParityLocked(sp, lz, s, buf, flags, &futs, &pending)
			}
			v.recordStripeChecksumsLocked(lz, s, buf, &pending)
			delete(lz.active, s)
			buf.stripe = -1
			buf.fill = 0
			lz.free = append(lz.free, buf)
			lz.cond.Broadcast()
			v.eng.StripeClosed(lz.idx, s)
		} else if v.eng.InPlaceParityPrefix() {
			// Stripe still partial: update the parity prefix in place
			// through the random write area (§5.4).
			v.issueZRWAParityLocked(sp, lz, s, buf, flags, &futs)
		} else {
			// Stripe still partial: log partial parity for the region
			// this write affected (§5.1).
			if p := v.partialParityLocked(lz, s, buf, inStripe, inStripe+n, flags); p != nil {
				pending = append(pending, *p)
			}
		}

		off += n
		data = data[n*ss:]
	}
	return futs, pending, nil
}

// issueDataLocked writes the data chunk covering zone-relative stripe
// offsets [inStripe, inStripe+len) of stripe s to the owning devices.
func (v *Volume) issueDataLocked(sp *obs.Span, z int, s, inStripe int64, chunk []byte, flags zns.Flag, futs *[]subIO, pending *[]pendingMD) {
	ss := int64(v.sectorSize)
	for len(chunk) > 0 {
		u := int(inStripe / v.lt.su)
		intra := inStripe % v.lt.su
		n := v.lt.su - intra
		if avail := int64(len(chunk)) / ss; n > avail {
			n = avail
		}
		dev := v.lt.dataDev(z, s, u)
		pba := int64(z)*v.lt.physZoneSize + s*v.lt.su + intra
		lbaStart := v.lt.zoneStart(z) + s*v.lt.stripeSectors() + inStripe
		v.issueDeviceWrite(sp, dev, pba, chunk[:n*ss], flags, lbaStart, false, z, s, futs, pending)
		chunk = chunk[n*ss:]
		inStripe += n
	}
}

// issueParityLocked computes and writes the full parity unit of a
// completed stripe from its buffer.
func (v *Volume) issueParityLocked(sp *obs.Span, lz *logicalZone, s int64, buf *stripeBuffer, flags zns.Flag, futs *[]subIO, pending *[]pendingMD) {
	ss := int64(v.sectorSize)
	suBytes := v.lt.su * ss
	units := make([][]byte, v.lt.d)
	for u := range units {
		units[u] = buf.data[int64(u)*suBytes : int64(u+1)*suBytes]
	}
	p := parity.Encode(units...)
	dev := v.lt.parityDev(lz.idx, s)
	v.stats.fullParityWrites.Add(1)
	v.issueDeviceWrite(sp, dev, v.lt.parityPBA(lz.idx, s), p, flags, 0, true, lz.idx, s, futs, pending)
}

// partialParityLocked builds the partial-parity log record for a write
// covering zone-relative stripe offsets [a, b) of the (still partial)
// stripe s. The log goes to the partial-parity metadata zone of the
// device that will eventually hold the stripe's parity (Table 1). Caller
// holds lz.mu; the append itself happens later.
func (v *Volume) partialParityLocked(lz *logicalZone, s int64, buf *stripeBuffer, a, b int64, flags zns.Flag) *pendingMD {
	dev := v.lt.parityDev(lz.idx, s)
	if v.mdm(dev) == nil {
		return nil // parity device failed: data units carry the write
	}
	regions := v.lt.intraRegions(a, b)
	payload := v.parityImageLocked(buf, regions)
	v.stats.partialParityLogs.Add(1)
	gen := v.Generation(lz.idx)
	return &pendingMD{
		dev: dev,
		rec: &record{
			typ:      recPartialParity,
			startLBA: v.lt.stripeStart(lz.idx, s) + a,
			endLBA:   v.lt.stripeStart(lz.idx, s) + b,
			gen:      gen,
			payload:  payload,
		},
		useMeta: v.cfg.ParityMode == PPInlineMeta,
		z:       lz.idx,
		s:       s,
		hasPP:   true,
		pp: ppengine.Append{
			Dev:      dev,
			Zone:     lz.idx,
			Stripe:   s,
			StartLBA: v.lt.stripeStart(lz.idx, s) + a,
			EndLBA:   v.lt.stripeStart(lz.idx, s) + b,
			Gen:      gen,
			Payload:  payload,
		},
	}
}
