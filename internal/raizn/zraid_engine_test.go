package raizn

import (
	"testing"

	"raizn/internal/obs"
	"raizn/internal/ppengine"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// zraidDevConfig gives the devices the ZRWA the zraid engine's PP slots
// overwrite through: two slots (su=16 -> stride 17) per window.
func zraidDevConfig() zns.Config {
	cfg := testDevConfig()
	cfg.ZRWASectors = 34
	return cfg
}

func zraidConfig() Config {
	cfg := DefaultConfig()
	cfg.ParityEngine = EngineZRAID
	return cfg
}

// runZraidVol runs fn on a 5-device zraid volume: 8 zones - 3 metadata
// - 2 PP = 3 logical zones of 512 sectors.
func runZraidVol(t *testing.T, fn func(c *vclock.Clock, v *Volume, devs []*zns.Device)) {
	t.Helper()
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, zraidDevConfig())
		}
		v, err := Create(c, devs, zraidConfig())
		if err != nil {
			t.Fatalf("Create(zraid): %v", err)
		}
		fn(c, v, devs)
	})
}

func TestZRAIDCreateGeometry(t *testing.T) {
	runZraidVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		if got := v.NumZones(); got != 3 {
			t.Errorf("NumZones = %d, want 3 (8 phys - 3 md - 2 pp)", got)
		}
		if k := v.ParityEngineKind(); k != ppengine.ZRAID {
			t.Errorf("engine kind = %v, want zraid", k)
		}
		if got := zraidConfig().ReservedZones(); got != 5 {
			t.Errorf("ReservedZones = %d, want 5", got)
		}
	})
}

func TestZRAIDValidation(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		// No ZRWA on the devices: the slots cannot be overwritten.
		devs := newTestDevices(c, 5)
		if _, err := Create(c, devs, zraidConfig()); err == nil {
			t.Error("zraid on ZRWA-less devices should be rejected")
		}
		// ParityMode variants belong to the logged engine.
		devs2 := make([]*zns.Device, 5)
		for i := range devs2 {
			devs2[i] = zns.NewDevice(c, zraidDevConfig())
		}
		cfg := zraidConfig()
		cfg.ParityMode = PPInlineMeta
		if _, err := Create(c, devs2, cfg); err == nil {
			t.Error("zraid with ParityMode=PPInlineMeta should be rejected")
		}
	})
}

// TestZRAIDEndToEnd drives sub-stripe and spanning writes, degraded
// reads, and a rebuild on the zraid engine.
func TestZRAIDEndToEnd(t *testing.T) {
	runZraidVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		sizes := []int{5, 11, 16, 33, 64, 3, 60, 64, 20}
		lba := int64(0)
		for _, n := range sizes {
			mustWriteV(t, v, lba, n, 0)
			lba += int64(n)
		}
		checkReadV(t, v, 0, int(lba))

		v.Flush()
		victim := v.lt.dataDev(0, 0, 1)
		v.FailDevice(victim)
		checkReadV(t, v, 0, int(lba))

		if _, err := v.ReplaceDevice(zns.NewDevice(c, zraidDevConfig())); err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		checkReadV(t, v, 0, int(lba))

		st := v.PPEngineStats()
		if st.VolatileBytes == 0 {
			t.Error("no volatile PP bytes: slot overwrites never happened")
		}
	})
}

// TestZRAIDCrashRecovery power-cuts mid-zone and expects the flushed
// prefix back, with appends continuing.
func TestZRAIDCrashRecovery(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, zraidDevConfig())
		}
		cfg := zraidConfig()
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 100, 0)
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 100, 30, 0) // unflushed tail
		for _, d := range devs {
			d.PowerLoss(nil)
		}
		v2, err := Mount(c, devs, cfg)
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		if k := v2.ParityEngineKind(); k != ppengine.ZRAID {
			t.Fatalf("recovered volume engine = %v", k)
		}
		wp := v2.Zone(0).WP
		if wp < 100 {
			t.Fatalf("flushed data lost: WP=%d", wp)
		}
		checkReadV(t, v2, 0, int(wp))

		// Recovery re-checkpoints live parity into the metadata zones and
		// formats the engine: the PP pool starts empty.
		recs, err := v2.eng.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Errorf("PP pool not formatted after recovery: %d records", len(recs))
		}

		mustWriteV(t, v2, wp, 40, 0)
		checkReadV(t, v2, 0, int(wp)+40)
	})
}

// TestZRAIDCrashAllSubmitted cuts every zone at its submitted write
// pointer (nothing torn, nothing flushed) and expects recovery to
// produce a readable volume including the PP-protected tail stripe.
func TestZRAIDCrashAllSubmitted(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, zraidDevConfig())
		}
		cfg := zraidConfig()
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 64, 0)
		mustWriteV(t, v, 64, 24, 0) // partial stripe: PP slot written

		cc := captureCrash(devs, 0)
		cc.allClk.Run(func() {
			v2, err := Mount(cc.allClk, cc.allDevs, cfg)
			if err != nil {
				t.Fatalf("Mount all-submitted clone: %v", err)
			}
			wp := v2.Zone(0).WP
			if wp < 64 {
				t.Fatalf("full stripe lost: WP=%d", wp)
			}
			checkReadV(t, v2, 0, int(wp))
		})
	})
}

// TestZRAIDWAAccountingCloses replays the logged engine's closure
// invariant on zraid: every byte the raizn layer puts on a device —
// including PP slot writes and GC migrations — lands in exactly one
// category, so the category sum equals device host bytes.
func TestZRAIDWAAccountingCloses(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, zraidDevConfig())
		}
		j := obs.NewJournal(c, obs.JournalConfig{Capacity: 8192})
		j.Enable()
		cfg := zraidConfig()
		cfg.Journal = j
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		zs := v.ZoneSectors()
		for off := int64(0); off < zs; off += 32 {
			mustWriteV(t, v, off, 32, 0)
		}
		mustWriteV(t, v, zs, 24, 0)
		if err := v.FinishZone(1); err != nil {
			t.Fatal(err)
		}
		if err := v.ResetZone(0); err != nil {
			t.Fatal(err)
		}
		mustWriteV(t, v, 0, 48, 0)
		if err := v.Maintain(); err != nil {
			t.Fatal(err)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}

		rep := v.WAReport()
		if got, want := rep.RaiznBytes(), rep.DeviceHostBytes(); got != want {
			t.Fatalf("category sum %d != device host bytes %d (unaccounted writes)", got, want)
		}
		byName := map[string]int64{}
		for _, cat := range rep.Categories {
			byName[cat.Name] = cat.Bytes
		}
		for _, name := range []string{"data", "parity", "pp-payload", "pp-header", "metadata"} {
			if byName[name] == 0 {
				t.Errorf("category %s empty; workload should have exercised it", name)
			}
		}
	})
}

// TestZRAIDBackpressureFallback exhausts one device's PP pool with live
// slots and checks the write path falls back to the metadata log — the
// write succeeds, FallbackTotal grows, and the WA accounting still
// closes.
func TestZRAIDBackpressureFallback(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		devs := make([]*zns.Device, 5)
		for i := range devs {
			devs[i] = zns.NewDevice(c, zraidDevConfig())
		}
		j := obs.NewJournal(c, obs.JournalConfig{Capacity: 8192})
		j.Enable()
		cfg := zraidConfig()
		cfg.Journal = j
		v, err := Create(c, devs, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Pack device 0's pool with live slots the volume never closes.
		ss := v.SectorSize()
		refused := 0
		for i := 0; i < 40 && refused < 3; i++ {
			fut, ok := v.eng.Persist(ppengine.Append{
				Dev: 0, Zone: 0, Stripe: int64(1000 + i),
				StartLBA: 0, EndLBA: 8, Gen: 999,
				Payload: make([]byte, 8*ss),
			})
			if !ok {
				refused++
				continue
			}
			if err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		if refused == 0 {
			t.Fatal("PP pool never exhausted")
		}
		before := v.PPEngineStats()

		// Stripe 4 of zone 0 sends its partial parity to device 0
		// (parityDev = 4 - (s+z)%5): four full stripes, then a partial.
		for i := 0; i < 4; i++ {
			mustWriteV(t, v, int64(i)*64, 64, 0)
		}
		mustWriteV(t, v, 256, 8, 0)
		checkReadV(t, v, 0, 264)

		after := v.PPEngineStats()
		if after.FallbackTotal <= before.FallbackTotal {
			t.Errorf("no fallback counted: %d -> %d", before.FallbackTotal, after.FallbackTotal)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		rep := v.WAReport()
		if got, want := rep.RaiznBytes(), rep.DeviceHostBytes(); got != want {
			t.Fatalf("WA accounting does not close under fallback: %d != %d", got, want)
		}
	})
}

// TestZRAIDGCUnderConcurrentWrites races zone writers against a driver
// that churns device 0's PP pool: it appends a fresh slot per step and
// closes each stripe only after it has slid out of the ZRWA window, so
// the slots die unreusable, the head fills, and the ring advance must
// garbage-collect while real writes are in flight.
func TestZRAIDGCUnderConcurrentWrites(t *testing.T) {
	runZraidVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		ss := v.SectorSize()
		wg := c.NewWaitGroup()
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				fut, ok := v.eng.Persist(ppengine.Append{
					Dev: 0, Zone: 0, Stripe: int64(2000 + i),
					StartLBA: 0, EndLBA: 8, Gen: 999,
					Payload: make([]byte, 8*ss),
				})
				if ok {
					if err := fut.Wait(); err != nil {
						t.Errorf("driver persist %d: %v", i, err)
						return
					}
				}
				if i >= 2 {
					// Two slots behind the head: outside the window, so
					// the dead slot is reclaimable only by GC.
					v.eng.StripeClosed(0, int64(2000+i-2))
				}
			}
		})
		for z := 0; z < v.NumZones(); z++ {
			z := z
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				lba := int64(z) * v.ZoneSectors()
				var futs []*vclock.Future
				for _, n := range []int64{4, 8, 52, 64, 12, 116, 4, 60, 128, 20} {
					futs = append(futs, v.SubmitWrite(lba, lbaPattern(v, lba, int(n)), 0))
					lba += n
				}
				if err := vclock.WaitAll(futs...); err != nil {
					t.Errorf("zone %d workload: %v", z, err)
				}
			})
		}
		wg.Wait()

		for z := 0; z < v.NumZones(); z++ {
			checkReadV(t, v, int64(z)*v.ZoneSectors(), 468)
		}
		st := v.PPEngineStats()
		if st.GCRuns == 0 {
			t.Error("head zones filled but no PP-zone GC ran")
		}
		if st.GCMigrated == 0 {
			t.Error("GC ran but migrated no live slots")
		}
	})
}

// TestZRAIDDegradedMaintain fails a device mid-workload and checks
// writes, reads, and the engine's GC tolerate the hole.
func TestZRAIDDegradedMaintain(t *testing.T) {
	runZraidVol(t, func(c *vclock.Clock, v *Volume, devs []*zns.Device) {
		mustWriteV(t, v, 0, 100, 0)
		v.Flush()
		v.FailDevice(2)
		mustWriteV(t, v, 100, 60, 0)
		checkReadV(t, v, 0, 160)
		if err := v.Maintain(); err != nil {
			t.Fatalf("Maintain degraded: %v", err)
		}
		mustWriteV(t, v, 160, 24, 0)
		checkReadV(t, v, 0, 184)
	})
}

// TestEngineParityModesDifferential proves the engine seam preserved
// the logged behavior: for every ParityMode, the pipelined and legacy
// write paths produce byte-identical recovered state after a power cut.
func TestEngineParityModesDifferential(t *testing.T) {
	modes := []struct {
		name string
		mode ParityMode
	}{
		{"PPLog", PPLog},
		{"PPInlineMeta", PPInlineMeta},
		{"PPZRWA", PPZRWA},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			var snaps [2]volSnapshot
			for pathIdx, legacy := range []bool{false, true} {
				c := vclock.New()
				c.Run(func() {
					devs := make([]*zns.Device, 5)
					for i := range devs {
						devs[i] = zns.NewDevice(c, extDevConfig())
					}
					cfg := DefaultConfig()
					cfg.ParityMode = m.mode
					cfg.LegacyWritePath = legacy
					v, err := Create(c, devs, cfg)
					if err != nil {
						t.Fatalf("Create: %v", err)
					}
					if v.ParityEngineKind() != ppengine.Logged {
						t.Fatal("ParityMode runs must use the logged engine")
					}
					runSeqDiffWorkload(t, v)
					for _, d := range devs {
						d.PowerLoss(nil)
					}
					v2, err := Mount(c, devs, cfg)
					if err != nil {
						t.Fatalf("Mount after cut: %v", err)
					}
					snaps[pathIdx] = snapshotVolume(t, v2)
				})
			}
			compareSnapshots(t, "mode-"+m.name, snaps[0], snaps[1])
		})
	}
}
