// Package ring is an io_uring-style submission/completion ring between
// the RAIZN / volume-manager layers and the simulated ZNS devices. A
// caller stages typed SQEs (write, writev, read, zero-copy read, append,
// flush, reset, finish) for each device of an array, the device drains
// the whole group per scheduling decision (one lock acquisition, one
// future slab — see zns.PrepareBatch), and every group of the batch
// shares ONE completion-walker goroutine that reaps the CQ through the
// vclock.Future machinery. Simulated per-command timing is identical to
// individual submission; only host-side fixed costs are amortized.
//
// A Batch is single-use and single-goroutine: push SQEs, Flush each
// device group, harvest the futures, then Submit. The Set recycles batch
// storage once the walker has delivered the last completion.
package ring

import (
	"strconv"
	"sync"

	"raizn/internal/obs"
	"raizn/internal/stats"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Set is the per-array ring set: one SQ/CQ pair per device slot plus
// shared drain metrics (batch/SQE counters, per-slot SQ depth gauges,
// virtual SQ-to-CQ latency histogram).
type Set struct {
	clk     *vclock.Clock
	depth   []*obs.Gauge // last drained group size, per device slot
	batches *obs.Counter // drained device groups
	sqes    *obs.Counter // SQEs drained
	lat     *stats.Histogram

	pool sync.Pool // *Batch
}

// NewSet builds a ring set for n device slots, registering its metrics
// (label, when non-empty, becomes the metrics' array label, matching
// raizn.Config.MetricsLabel).
func NewSet(clk *vclock.Clock, reg *obs.Registry, label string, n int) *Set {
	name := func(base string) string {
		if label == "" {
			return base
		}
		return obs.LabeledName(base, "array", label)
	}
	s := &Set{
		clk:     clk,
		depth:   make([]*obs.Gauge, n),
		batches: reg.Counter(name("ring_batches_total")),
		sqes:    reg.Counter(name("ring_sqes_total")),
		lat:     reg.Histogram(name("ring_sq_to_cq_us")),
	}
	reg.Help("ring_batches_total", "Device SQ groups drained by the submission ring.")
	reg.Help("ring_sqes_total", "SQEs drained by the submission ring.")
	reg.Help("ring_sq_to_cq_us", "Virtual time from SQ drain to CQ delivery.")
	reg.Help("ring_sq_depth", "SQEs currently queued per device submission ring.")
	for i := range s.depth {
		kv := []string{"dev", strconv.Itoa(i)}
		if label != "" {
			kv = append([]string{"array", label}, kv...)
		}
		s.depth[i] = reg.Gauge(obs.LabeledName("ring_sq_depth", kv...))
	}
	return s
}

// Batch stages one submission: SQEs pushed since the last Flush form the
// current device group. Not safe for concurrent use.
type Batch struct {
	set   *Set
	cmds  []zns.Cmd
	comps []zns.Completion
	start int // first SQE of the current (unflushed) device group
}

// Batch returns an empty pooled batch.
func (s *Set) Batch() *Batch {
	if b, ok := s.pool.Get().(*Batch); ok && b != nil {
		return b
	}
	return &Batch{set: s}
}

// Push stages one SQE for the current device group.
func (b *Batch) Push(cmd zns.Cmd) {
	b.cmds = append(b.cmds, cmd)
}

// Pending reports whether the current device group has staged SQEs.
func (b *Batch) Pending() bool { return b.start < len(b.cmds) }

// Flush drains the current device group into d (slot is d's position in
// the array, for the depth gauge): the device applies the whole group
// under one lock acquisition. It returns the drained SQEs with their
// outputs (futures, assigned sectors, zero-copy views) filled in; the
// returned slice is valid until Submit. Commands rejected at submit have
// Err set and a pre-completed future.
func (b *Batch) Flush(d *zns.Device, slot int) []zns.Cmd {
	group := b.cmds[b.start:]
	if len(group) == 0 {
		return nil
	}
	b.start = len(b.cmds)
	b.comps = d.PrepareBatch(group, b.comps)
	s := b.set
	s.batches.Inc()
	s.sqes.Add(int64(len(group)))
	if slot >= 0 && slot < len(s.depth) {
		s.depth[slot].Set(int64(len(group)))
	}
	now := s.clk.Now()
	for i := range group {
		if group[i].Err == nil {
			s.lat.Record(group[i].Done - now)
		}
	}
	return group
}

// Submit delivers every flushed group's completions through one walker
// goroutine and recycles the batch (which must not be used afterwards).
// Unflushed SQEs are discarded.
func (b *Batch) Submit() {
	comps := b.comps
	b.comps = nil
	b.cmds = b.cmds[:0]
	b.start = 0
	set := b.set
	zns.RunCompletions(set.clk, comps, func() {
		b.comps = comps[:0]
		set.pool.Put(b)
	})
}
