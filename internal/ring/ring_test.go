package ring

import (
	"bytes"
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

func testDev(clk *vclock.Clock) *zns.Device {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 8
	cfg.ZoneSize = 64
	cfg.ZoneCap = 48
	return zns.NewDevice(clk, cfg)
}

func sectors(d *zns.Device, n int, tag byte) []byte {
	b := make([]byte, n*d.Config().SectorSize)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

// TestBatchRoundTrip pushes SQEs for two devices through one batch,
// checks the flushed groups' outputs and the awaited payloads, and
// verifies the drain metrics count groups and SQEs.
func TestBatchRoundTrip(t *testing.T) {
	clk := vclock.New()
	reg := obs.NewRegistry()
	clk.Run(func() {
		d0, d1 := testDev(clk), testDev(clk)
		set := NewSet(clk, reg, "t", 2)
		b := set.Batch()

		w0 := sectors(d0, 2, 0xA0)
		b.Push(zns.Cmd{Op: zns.CmdWrite, Sector: 0, Data: w0})
		b.Push(zns.Cmd{Op: zns.CmdAppend, Zone: 1, Data: sectors(d0, 1, 0xA1)})
		if !b.Pending() {
			t.Fatal("staged SQEs not pending")
		}
		g0 := b.Flush(d0, 0)
		if b.Pending() {
			t.Fatal("pending after flush")
		}
		if len(g0) != 2 {
			t.Fatalf("group 0 has %d SQEs, want 2", len(g0))
		}
		if g0[1].Sector != d0.ZoneStart(1) {
			t.Errorf("append sector = %d, want %d", g0[1].Sector, d0.ZoneStart(1))
		}

		w1 := sectors(d1, 3, 0xB0)
		b.Push(zns.Cmd{Op: zns.CmdWrite, Sector: 0, Data: w1})
		g1 := b.Flush(d1, 1)

		futs := []*vclock.Future{g0[0].Fut, g0[1].Fut, g1[0].Fut}
		b.Submit()
		for i, f := range futs {
			if err := f.Wait(); err != nil {
				t.Fatalf("cmd %d: %v", i, err)
			}
		}

		got := make([]byte, len(w1))
		if err := d1.Read(0, got).Wait(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w1) {
			t.Error("device 1 payload does not match the batched write")
		}
	})

	snap := reg.Snapshot()
	check := func(name string, want int64) {
		got, ok := snap.Counters[name]
		if !ok {
			t.Errorf("metric %s not registered", name)
			return
		}
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check(obs.LabeledName("ring_batches_total", "array", "t"), 2)
	check(obs.LabeledName("ring_sqes_total", "array", "t"), 3)
}

// TestBatchRecycle checks Submit returns the batch to the pool in a
// reusable state: a second acquisition after the walker finishes starts
// empty and works.
func TestBatchRecycle(t *testing.T) {
	clk := vclock.New()
	set := NewSet(clk, obs.NewRegistry(), "", 1)
	clk.Run(func() {
		d := testDev(clk)
		for round := 0; round < 3; round++ {
			b := set.Batch()
			if b.Pending() {
				t.Fatalf("round %d: recycled batch has pending SQEs", round)
			}
			b.Push(zns.Cmd{Op: zns.CmdWrite, Sector: int64(round), Data: sectors(d, 1, byte(round))})
			g := b.Flush(d, 0)
			fut := g[0].Fut
			b.Submit()
			if err := fut.Wait(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	})
}

// TestEmptyFlushAndSubmit checks the degenerate paths: flushing with no
// staged SQEs is a no-op, and a batch with nothing flushed still
// recycles through Submit.
func TestEmptyFlushAndSubmit(t *testing.T) {
	clk := vclock.New()
	set := NewSet(clk, obs.NewRegistry(), "", 1)
	clk.Run(func() {
		d := testDev(clk)
		b := set.Batch()
		if g := b.Flush(d, 0); g != nil {
			t.Errorf("empty flush returned %d SQEs", len(g))
		}
		b.Submit()
	})
}
