package scrub

import (
	"raizn/internal/mdraid"
	"raizn/internal/raizn"
)

// RaiznTarget adapts a RAIZN volume to the scrubber: regions are
// logical zones, and stripe verification/repair is the volume's
// checksum-aware ScrubStripe.
type RaiznTarget struct {
	V *raizn.Volume
}

func (t RaiznTarget) Regions() int              { return t.V.NumZones() }
func (t RaiznTarget) RegionStripes(r int) int64 { return t.V.StripesPerZone() }
func (t RaiznTarget) ResetProgress()            { t.V.ResetScrubProgress() }

func (t RaiznTarget) ScrubStripe(r int, s int64, repair bool) (StripeResult, error) {
	res, err := t.V.ScrubStripe(r, s, repair)
	return StripeResult{
		BytesRead:      res.BytesRead,
		Skipped:        res.Skipped,
		Mismatch:       res.Mismatch,
		ReadErrors:     res.ReadErrors,
		RepairedData:   res.RepairedData,
		RepairedParity: res.RepairedParity,
		Unrepaired:     res.Unrepaired,
	}, err
}

// RaiznArray adapts a RAIZN volume to the health monitor.
type RaiznArray struct {
	V *raizn.Volume
}

func (a RaiznArray) NumDevices() int { return a.V.NumDevices() }

func (a RaiznArray) DeviceErrors(i int) (readErrors, corruptions int64) {
	return a.V.DeviceErrorCounters(i)
}

func (a RaiznArray) Degraded() bool { return a.V.Degraded() >= 0 }

func (a RaiznArray) FailDevice(i int) error { return a.V.FailDevice(i) }

// MdraidTarget adapts the md baseline's check/repair scrub: one region
// of perDev stripe rows.
type MdraidTarget struct {
	V *mdraid.Volume
}

func (t MdraidTarget) Regions() int              { return 1 }
func (t MdraidTarget) RegionStripes(r int) int64 { return t.V.NumStripes() }
func (t MdraidTarget) ResetProgress()            {}

func (t MdraidTarget) ScrubStripe(r int, s int64, repair bool) (StripeResult, error) {
	res, err := t.V.CheckStripe(s, repair)
	return StripeResult{
		BytesRead:      res.BytesRead,
		Skipped:        res.Skipped,
		Mismatch:       res.Mismatch,
		ReadErrors:     res.ReadErrors,
		RepairedData:   res.RepairedData,
		RepairedParity: res.RepairedParity,
		Unrepaired:     res.Unrepaired,
	}, err
}
