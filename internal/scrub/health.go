package scrub

import (
	"sync"
	"time"

	"raizn/internal/vclock"
)

// HealthState is a device's position in the health state machine.
type HealthState int

const (
	Healthy HealthState = iota
	Suspect             // error count crossed SuspectThreshold
	Failed              // error count crossed FailThreshold: device was auto-failed
)

func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Array is the monitor's view of a redundant volume.
type Array interface {
	NumDevices() int
	// DeviceErrors returns device i's cumulative read-error and
	// detected-corruption counts.
	DeviceErrors(i int) (readErrors, corruptions int64)
	// Degraded reports whether the array is already missing a device.
	Degraded() bool
	// FailDevice administratively fails device i (kicks degraded mode).
	FailDevice(i int) error
}

// MonitorConfig configures a health Monitor.
type MonitorConfig struct {
	Clock *vclock.Clock
	Array Array
	// SuspectThreshold: readErrors+corruptions at which a device turns
	// suspect. Zero disables the suspect state.
	SuspectThreshold int64
	// FailThreshold: count at which the device is auto-failed and the
	// rebuild hook fires. Zero disables auto-fail.
	FailThreshold int64
	// Interval between background polls.
	Interval time.Duration
	// OnFail, if set, runs (on a simulated goroutine) after the monitor
	// auto-fails a device — the auto-rebuild hook. It receives the
	// failed slot.
	OnFail func(dev int)
}

// Monitor tracks per-device health and auto-fails devices whose error
// counters cross the configured threshold. One device at most is
// auto-failed: with single parity, failing a second would lose data, so
// the monitor holds further transitions at Suspect while the array is
// degraded.
type Monitor struct {
	cfg MonitorConfig
	clk *vclock.Clock

	mu       sync.Mutex
	states   []HealthState
	stopping bool
	running  bool
	done     *vclock.Future
}

// NewMonitor builds a Monitor over the array.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{
		cfg:    cfg,
		clk:    cfg.Clock,
		states: make([]HealthState, cfg.Array.NumDevices()),
	}
}

// State returns device i's current health state.
func (m *Monitor) State(i int) HealthState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.states) {
		return Healthy
	}
	return m.states[i]
}

// States returns a snapshot of all device states.
func (m *Monitor) States() []HealthState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HealthState, len(m.states))
	copy(out, m.states)
	return out
}

// Poll evaluates every device's counters once, applying state
// transitions and firing the auto-fail hook where warranted.
func (m *Monitor) Poll() {
	arr := m.cfg.Array
	var failed []int
	m.mu.Lock()
	for i := range m.states {
		re, corr := arr.DeviceErrors(i)
		e := re + corr
		switch {
		case m.cfg.FailThreshold > 0 && e >= m.cfg.FailThreshold && m.states[i] != Failed:
			if arr.Degraded() {
				// Single parity: a second failure would lose data.
				// Hold at suspect until the array is whole again.
				if m.states[i] == Healthy {
					m.states[i] = Suspect
				}
				continue
			}
			m.states[i] = Failed
			failed = append(failed, i)
		case m.cfg.SuspectThreshold > 0 && e >= m.cfg.SuspectThreshold && m.states[i] == Healthy:
			m.states[i] = Suspect
		}
	}
	m.mu.Unlock()

	for _, i := range failed {
		_ = arr.FailDevice(i)
		if m.cfg.OnFail != nil {
			dev := i
			m.clk.Go(func() { m.cfg.OnFail(dev) })
		}
	}
}

// MarkReplaced resets device i's state to Healthy (after a successful
// rebuild onto a replacement).
func (m *Monitor) MarkReplaced(i int) {
	m.mu.Lock()
	if i >= 0 && i < len(m.states) {
		m.states[i] = Healthy
	}
	m.mu.Unlock()
}

// Start launches the background polling loop.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.stopping = false
	m.done = m.clk.NewFuture()
	done := m.done
	m.mu.Unlock()

	interval := m.cfg.Interval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	m.clk.Go(func() {
		for {
			m.mu.Lock()
			stopping := m.stopping
			m.mu.Unlock()
			if stopping {
				break
			}
			m.Poll()
			m.clk.Sleep(interval)
		}
		m.mu.Lock()
		m.running = false
		m.mu.Unlock()
		done.Complete(nil)
	})
}

// Stop signals the polling loop to exit and waits for it.
func (m *Monitor) Stop() {
	m.mu.Lock()
	m.stopping = true
	done := m.done
	running := m.running
	m.mu.Unlock()
	if running && done != nil {
		_ = done.Wait()
	}
	m.mu.Lock()
	m.stopping = false
	m.mu.Unlock()
}
