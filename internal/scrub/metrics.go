package scrub

import "raizn/internal/obs"

// RegisterMetrics publishes the scrubber's lifetime totals into the
// registry as pull-style gauges under the scrub_ prefix. The gauge
// funcs take s.mu at snapshot time, so snapshots must not be taken
// from code holding the scrubber lock.
func (s *Scrubber) RegisterMetrics(r *obs.Registry) {
	locked := func(f func() int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	g := func(name, help string, f func() int64) {
		r.Help(name, help)
		r.GaugeFunc(name, locked(f))
	}
	g("scrub_passes_total", "full scrub passes completed over the array", func() int64 { return s.passes })
	g("scrub_verified_stripes_total", "stripes fully verified across all passes", func() int64 { return s.totals.Stripes })
	g("scrub_skipped_stripes_total", "stripes scrub could not verify (partial or racing writes)", func() int64 { return s.totals.Skipped })
	g("scrub_mismatches_total", "stripes failing XOR or CRC verification", func() int64 { return s.totals.Mismatches })
	g("scrub_repaired_data_total", "corrupted data units repaired", func() int64 { return s.totals.RepairedData })
	g("scrub_repaired_parity_total", "corrupted parity units repaired", func() int64 { return s.totals.RepairedParity })
	g("scrub_read_errors_total", "read errors encountered while scrubbing", func() int64 { return s.totals.ReadErrors })
	g("scrub_unrepaired_total", "mismatched stripes scrub could not attribute or repair", func() int64 { return s.totals.Unrepaired })
	g("scrub_bytes_read_total", "bytes read from devices by scrub verification", func() int64 { return s.scannedAll })
}
