package scrub

import "raizn/internal/obs"

// RegisterMetrics publishes the scrubber's lifetime totals into the
// registry as pull-style gauges under the scrub_ prefix. The gauge
// funcs take s.mu at snapshot time, so snapshots must not be taken
// from code holding the scrubber lock.
func (s *Scrubber) RegisterMetrics(r *obs.Registry) {
	locked := func(f func() int64) func() int64 {
		return func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("scrub_passes_total", locked(func() int64 { return s.passes }))
	r.GaugeFunc("scrub_verified_stripes_total", locked(func() int64 { return s.totals.Stripes }))
	r.GaugeFunc("scrub_skipped_stripes_total", locked(func() int64 { return s.totals.Skipped }))
	r.GaugeFunc("scrub_mismatches_total", locked(func() int64 { return s.totals.Mismatches }))
	r.GaugeFunc("scrub_repaired_data_total", locked(func() int64 { return s.totals.RepairedData }))
	r.GaugeFunc("scrub_repaired_parity_total", locked(func() int64 { return s.totals.RepairedParity }))
	r.GaugeFunc("scrub_read_errors_total", locked(func() int64 { return s.totals.ReadErrors }))
	r.GaugeFunc("scrub_unrepaired_total", locked(func() int64 { return s.totals.Unrepaired }))
	r.GaugeFunc("scrub_bytes_read_total", locked(func() int64 { return s.scannedAll }))
}
