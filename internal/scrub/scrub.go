// Package scrub implements the background scrub and device-health
// subsystem: a rate-limited scrubber that walks a volume stripe by
// stripe verifying (and optionally repairing) data/parity consistency,
// and a health monitor that turns accumulated read-error and corruption
// counts into a healthy → suspect → failed state machine with an
// auto-rebuild hook.
//
// The scrubber is volume-agnostic: anything that can enumerate regions
// of stripes and verify one stripe at a time (RAIZN logical zones,
// mdraid device-stripes) plugs in through the Target interface. Rate
// limiting is a token bucket over scrubbed bytes on the virtual clock,
// so scrub interference with foreground IO is bounded and measurable.
package scrub

import (
	"errors"
	"sync"
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// StripeResult is the outcome of verifying one stripe.
type StripeResult struct {
	BytesRead      int64
	Skipped        bool
	Mismatch       bool
	ReadErrors     int
	RepairedData   bool
	RepairedParity bool
	Unrepaired     bool
}

// Target is a scrubbable volume.
type Target interface {
	// Regions returns how many stripe regions (logical zones, stripe
	// groups) the volume has.
	Regions() int
	// RegionStripes returns the number of stripes region r can hold.
	RegionStripes(r int) int64
	// ScrubStripe verifies stripe s of region r, repairing damage when
	// repair is set. Unverifiable stripes report Skipped, not an error.
	ScrubStripe(r int, s int64, repair bool) (StripeResult, error)
	// ResetProgress clears the volume's scrub-progress bookkeeping at
	// the start of a pass.
	ResetProgress()
}

// Config configures a Scrubber.
type Config struct {
	Clock  *vclock.Clock
	Target Target
	// Repair makes scrub fix what it can attribute; off = verify only.
	Repair bool
	// RateLimit bounds scrub reads in bytes per (virtual) second;
	// 0 means unthrottled.
	RateLimit int64
	// PassInterval is the idle time between background passes.
	PassInterval time.Duration
	// Journal, when non-nil and enabled, receives one EvScrub event per
	// completed pass (stripes, mismatches, repairs, bytes read).
	Journal *obs.Journal
}

// PassStats aggregates one scrub pass.
type PassStats struct {
	Stripes        int64 // stripes verified
	Skipped        int64 // stripes not verifiable this pass
	Mismatches     int64
	RepairedData   int64
	RepairedParity int64
	ReadErrors     int64
	Unrepaired     int64
	BytesRead      int64
	Elapsed        time.Duration
}

func (p *PassStats) add(r StripeResult) {
	if r.Skipped {
		p.Skipped++
	} else {
		p.Stripes++
	}
	if r.Mismatch {
		p.Mismatches++
	}
	if r.RepairedData {
		p.RepairedData++
	}
	if r.RepairedParity {
		p.RepairedParity++
	}
	p.ReadErrors += int64(r.ReadErrors)
	if r.Unrepaired {
		p.Unrepaired++
	}
	p.BytesRead += r.BytesRead
}

// ErrStopped is returned by RunPass when Stop interrupts it.
var ErrStopped = errors.New("scrub: stopped")

// Scrubber drives scrub passes over a Target.
type Scrubber struct {
	cfg Config
	clk *vclock.Clock

	mu       sync.Mutex
	stopping bool
	running  bool
	done     *vclock.Future // completes when the background loop exits

	// Token bucket (guarded by mu): tokens accumulate at RateLimit
	// bytes/sec up to one second's burst.
	tokens     int64
	lastRefill time.Duration

	passes     int64
	lastPass   PassStats
	totals     PassStats
	scannedAll int64 // bytes read across all passes, including the current one
}

// New builds a Scrubber. Config.Clock and Config.Target are required.
func New(cfg Config) *Scrubber {
	s := &Scrubber{cfg: cfg, clk: cfg.Clock}
	s.lastRefill = s.clk.Now()
	return s
}

// acquire blocks until n bytes of scrub budget are available.
func (s *Scrubber) acquire(n int64) {
	rate := s.cfg.RateLimit
	if rate <= 0 {
		return
	}
	for {
		s.mu.Lock()
		now := s.clk.Now()
		elapsed := now - s.lastRefill
		s.lastRefill = now
		s.tokens += int64(float64(rate) * elapsed.Seconds())
		if s.tokens > rate { // burst cap: one second of budget
			s.tokens = rate
		}
		if s.tokens >= n || s.stopping {
			s.tokens -= n
			s.mu.Unlock()
			return
		}
		short := n - s.tokens
		s.mu.Unlock()
		wait := time.Duration(float64(short) / float64(rate) * float64(time.Second))
		if wait < time.Microsecond {
			wait = time.Microsecond
		}
		s.clk.Sleep(wait)
	}
}

// stripeCost estimates the bytes one ScrubStripe will read, for
// throttling before the IO is issued.
func (s *Scrubber) stripeCost(r StripeResult) int64 { return r.BytesRead }

// RunPass scrubs every stripe of every region once, blocking until the
// pass completes. Safe to call from any simulated goroutine.
func (s *Scrubber) RunPass() (PassStats, error) {
	start := s.clk.Now()
	s.cfg.Target.ResetProgress()
	var stats PassStats
	for r := 0; r < s.cfg.Target.Regions(); r++ {
		n := s.cfg.Target.RegionStripes(r)
		for st := int64(0); st < n; st++ {
			s.mu.Lock()
			stopping := s.stopping
			s.mu.Unlock()
			if stopping {
				stats.Elapsed = s.clk.Now() - start
				return stats, ErrStopped
			}
			res, err := s.cfg.Target.ScrubStripe(r, st, s.cfg.Repair)
			if err != nil {
				stats.Elapsed = s.clk.Now() - start
				return stats, err
			}
			stats.add(res)
			s.mu.Lock()
			s.scannedAll += res.BytesRead
			s.mu.Unlock()
			// Pay for the bytes just read; the next stripe waits until
			// the bucket refills, bounding the average scrub rate.
			s.acquire(s.stripeCost(res))
		}
	}
	stats.Elapsed = s.clk.Now() - start
	s.mu.Lock()
	s.passes++
	s.lastPass = stats
	s.totals.Stripes += stats.Stripes
	s.totals.Skipped += stats.Skipped
	s.totals.Mismatches += stats.Mismatches
	s.totals.RepairedData += stats.RepairedData
	s.totals.RepairedParity += stats.RepairedParity
	s.totals.ReadErrors += stats.ReadErrors
	s.totals.Unrepaired += stats.Unrepaired
	s.totals.BytesRead += stats.BytesRead
	s.mu.Unlock()
	s.cfg.Journal.Record(obs.EvScrub, obs.SrcLogical, -1,
		stats.Stripes, stats.Mismatches,
		stats.RepairedData+stats.RepairedParity, stats.BytesRead)
	return stats, nil
}

// Start launches the background scrub loop: repeated passes separated
// by Config.PassInterval. No-op if already running.
func (s *Scrubber) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.stopping = false
	s.done = s.clk.NewFuture()
	done := s.done
	s.mu.Unlock()

	s.clk.Go(func() {
		for {
			if _, err := s.RunPass(); err != nil {
				break // stopped or volume error: end the loop
			}
			s.mu.Lock()
			stopping := s.stopping
			s.mu.Unlock()
			if stopping {
				break
			}
			if s.cfg.PassInterval > 0 {
				s.clk.Sleep(s.cfg.PassInterval)
			}
			s.mu.Lock()
			stopping = s.stopping
			s.mu.Unlock()
			if stopping {
				break
			}
		}
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
		done.Complete(nil)
	})
}

// Stop signals the background loop to exit and waits for it.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	s.stopping = true
	done := s.done
	running := s.running
	s.mu.Unlock()
	if running && done != nil {
		_ = done.Wait()
	}
	s.mu.Lock()
	s.stopping = false
	s.mu.Unlock()
}

// Passes returns how many passes completed.
func (s *Scrubber) Passes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.passes
}

// LastPass returns the most recently completed pass's stats.
func (s *Scrubber) LastPass() PassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastPass
}

// Totals returns stats accumulated over all completed passes.
func (s *Scrubber) Totals() PassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

// BytesScanned returns bytes read by scrub so far, including the pass
// in progress (Totals only counts completed passes).
func (s *Scrubber) BytesScanned() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scannedAll
}
