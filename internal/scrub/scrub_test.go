package scrub

import (
	"bytes"
	"testing"
	"time"

	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

const (
	testDevs     = 5
	testSU       = 16
	testZoneSize = 160
	testZoneCap  = 128
)

func testDevConfig() zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 8
	cfg.ZoneSize = testZoneSize
	cfg.ZoneCap = testZoneCap
	cfg.MaxOpenZones = 8
	cfg.MaxActiveZones = 10
	return cfg
}

func newVol(t *testing.T, c *vclock.Clock) (*raizn.Volume, []*zns.Device) {
	t.Helper()
	devs := make([]*zns.Device, testDevs)
	for i := range devs {
		devs[i] = zns.NewDevice(c, testDevConfig())
	}
	v, err := raizn.Create(c, devs, raizn.DefaultConfig())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return v, devs
}

// dataSector computes (device, device-absolute sector) of intra offset
// `intra` of data unit u in stripe s of logical zone z, mirroring the
// volume's arithmetic layout.
func dataSector(z int, s int64, u int, intra int64) (int, int64) {
	pd := testDevs - 1 - int((s+int64(z))%int64(testDevs))
	dev := (pd + 1 + u) % testDevs
	return dev, int64(z)*testZoneSize + s*testSU + intra
}

func pattern(v *raizn.Volume, lba int64, n int) []byte {
	ss := v.SectorSize()
	out := make([]byte, n*ss)
	for i := 0; i < n; i++ {
		cur := lba + int64(i)
		for j := 0; j < ss; j++ {
			out[i*ss+j] = byte(cur) ^ byte(j) ^ byte(cur>>8)
		}
	}
	return out
}

func mustWrite(t *testing.T, v *raizn.Volume, lba int64, n int) {
	t.Helper()
	if err := v.Write(lba, pattern(v, lba, n), 0); err != nil {
		t.Fatalf("Write(%d, %d): %v", lba, n, err)
	}
}

func checkRead(t *testing.T, v *raizn.Volume, lba int64, n int) {
	t.Helper()
	buf := make([]byte, n*v.SectorSize())
	if err := v.Read(lba, buf); err != nil {
		t.Fatalf("Read(%d, %d): %v", lba, n, err)
	}
	if !bytes.Equal(buf, pattern(v, lba, n)) {
		t.Fatalf("Read(%d, %d): data mismatch", lba, n)
	}
}

func TestPassRepairsAllInjectedRot(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		v, devs := newVol(t, c)
		// Fill two logical zones (8 complete stripes each).
		zoneSec := int(v.ZoneSectors())
		mustWrite(t, v, 0, zoneSec)
		mustWrite(t, v, v.ZoneSectors(), zoneSec)
		if err := v.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}

		// Inject corruption across zones, stripes, and units — one bad
		// unit per stripe so every instance is attributable.
		type hit struct {
			z     int
			s     int64
			u     int
			intra int64
		}
		hits := []hit{
			{0, 0, 0, 0}, {0, 2, 3, 7}, {0, 5, 1, 15},
			{1, 1, 2, 3}, {1, 7, 0, 9}, {1, 4, 3, 12},
		}
		for _, h := range hits {
			dev, pba := dataSector(h.z, h.s, h.u, h.intra)
			if err := devs[dev].CorruptSector(pba); err != nil {
				t.Fatalf("CorruptSector(%+v): %v", h, err)
			}
		}

		s := New(Config{Clock: c, Target: RaiznTarget{V: v}, Repair: true})
		stats, err := s.RunPass()
		if err != nil {
			t.Fatalf("RunPass: %v", err)
		}
		if stats.Mismatches != int64(len(hits)) {
			t.Errorf("Mismatches = %d, want %d", stats.Mismatches, len(hits))
		}
		if stats.RepairedData != int64(len(hits)) {
			t.Errorf("RepairedData = %d, want %d", stats.RepairedData, len(hits))
		}
		if stats.Unrepaired != 0 {
			t.Errorf("Unrepaired = %d, want 0", stats.Unrepaired)
		}

		// Full-volume readback: every acked LBA intact.
		checkRead(t, v, 0, zoneSec)
		checkRead(t, v, v.ZoneSectors(), zoneSec)

		// A second pass is clean.
		stats, err = s.RunPass()
		if err != nil {
			t.Fatalf("RunPass (2nd): %v", err)
		}
		if stats.Mismatches != 0 || stats.RepairedData != 0 {
			t.Errorf("second pass not clean: %+v", stats)
		}
	})
}

func TestRateLimitBoundsScrubRate(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		v, _ := newVol(t, c)
		mustWrite(t, v, 0, int(v.ZoneSectors()))

		// Unthrottled baseline.
		fast := New(Config{Clock: c, Target: RaiznTarget{V: v}, Repair: true})
		fstats, err := fast.RunPass()
		if err != nil {
			t.Fatalf("RunPass: %v", err)
		}
		if fstats.BytesRead == 0 {
			t.Fatal("pass read nothing")
		}

		// Throttled: elapsed must be at least BytesRead/rate (minus the
		// one-second initial burst allowance).
		rate := int64(1 << 20) // 1 MiB/s
		slow := New(Config{Clock: c, Target: RaiznTarget{V: v}, Repair: true, RateLimit: rate})
		sstats, err := slow.RunPass()
		if err != nil {
			t.Fatalf("RunPass (limited): %v", err)
		}
		wantMin := time.Duration(float64(sstats.BytesRead-rate) / float64(rate) * float64(time.Second))
		if sstats.Elapsed < wantMin {
			t.Errorf("limited pass took %v, want >= %v (%d bytes at %d B/s)",
				sstats.Elapsed, wantMin, sstats.BytesRead, rate)
		}
		if fstats.Elapsed >= wantMin {
			t.Errorf("unthrottled pass took %v, expected well under %v", fstats.Elapsed, wantMin)
		}
	})
}

func TestBackgroundScrubStartStop(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		v, devs := newVol(t, c)
		mustWrite(t, v, 0, int(v.ZoneSectors()))
		dev, pba := dataSector(0, 3, 1, 4)
		if err := devs[dev].CorruptSector(pba); err != nil {
			t.Fatalf("CorruptSector: %v", err)
		}

		s := New(Config{
			Clock: c, Target: RaiznTarget{V: v}, Repair: true,
			PassInterval: 10 * time.Millisecond,
		})
		s.Start()
		c.Sleep(500 * time.Millisecond)
		s.Stop()

		if s.Passes() == 0 {
			t.Fatal("background scrubber completed no passes")
		}
		if s.Totals().RepairedData == 0 {
			t.Error("background scrubber did not repair the injected rot")
		}
		checkRead(t, v, 0, int(v.ZoneSectors()))

		// Restart works.
		s.Start()
		c.Sleep(50 * time.Millisecond)
		s.Stop()
	})
}

func TestMonitorStateMachine(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		v, devs := newVol(t, c)
		mustWrite(t, v, 0, int(v.ZoneSectors()))

		m := NewMonitor(MonitorConfig{
			Clock: c, Array: RaiznArray{V: v},
			SuspectThreshold: 2, FailThreshold: 5,
		})
		if m.State(1) != Healthy {
			t.Fatalf("initial state = %v, want healthy", m.State(1))
		}

		// Latent read errors on device of unit 0, stripe 0: each
		// foreground read of that range fails (and is read-repaired),
		// incrementing the device's error counter.
		dev, pba := dataSector(0, 0, 0, 0)
		if err := devs[dev].InjectReadError(pba); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		buf := make([]byte, 16*v.SectorSize())
		read := func() {
			if err := v.Read(0, buf); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}

		read()
		read()
		m.Poll()
		if m.State(dev) != Suspect {
			re, corr := v.DeviceErrorCounters(dev)
			t.Fatalf("after 2 errors (re=%d corr=%d): state = %v, want suspect", re, corr, m.State(dev))
		}

		for i := 0; i < 3; i++ {
			read()
		}
		m.Poll()
		if m.State(dev) != Failed {
			t.Fatalf("after 5 errors: state = %v, want failed", m.State(dev))
		}
		if v.Degraded() != dev {
			t.Fatalf("Degraded() = %d, want %d (auto-fail)", v.Degraded(), dev)
		}
		// Reads still work, served degraded.
		checkRead(t, v, 0, int(v.ZoneSectors()))
	})
}

func TestMonitorAutoRebuild(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		v, devs := newVol(t, c)
		mustWrite(t, v, 0, int(v.ZoneSectors()))

		rebuilt := c.NewFuture()
		var m *Monitor
		m = NewMonitor(MonitorConfig{
			Clock: c, Array: RaiznArray{V: v},
			SuspectThreshold: 1, FailThreshold: 3,
			Interval: 10 * time.Millisecond,
			OnFail: func(dev int) {
				nd := zns.NewDevice(c, testDevConfig())
				if _, err := v.ReplaceDevice(nd); err != nil {
					rebuilt.Complete(err)
					return
				}
				m.MarkReplaced(dev)
				rebuilt.Complete(nil)
			},
		})

		dev, pba := dataSector(0, 1, 2, 5)
		if err := devs[dev].InjectReadError(pba); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		// Drive the device's error counter over the fail threshold with
		// repeated foreground reads of the latent unit (the sector stays
		// latent: foreground read-repair reconstructs but does not
		// relocate).
		buf := make([]byte, 16*v.SectorSize())
		lba := int64(1)*v.StripeSectors() + int64(2)*testSU // LBA of the latent unit
		for i := 0; i < 3; i++ {
			if err := v.Read(lba, buf); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}

		m.Start()
		if err := rebuilt.Wait(); err != nil {
			t.Fatalf("auto-rebuild: %v", err)
		}
		m.Stop()

		if v.Degraded() >= 0 {
			t.Fatalf("array still degraded after rebuild: %d", v.Degraded())
		}
		if m.State(dev) != Healthy {
			t.Errorf("state after MarkReplaced = %v, want healthy", m.State(dev))
		}
		checkRead(t, v, 0, int(v.ZoneSectors()))
	})
}

func TestMonitorHoldsSecondFailure(t *testing.T) {
	c := vclock.New()
	c.Run(func() {
		v, devs := newVol(t, c)
		mustWrite(t, v, 0, int(v.ZoneSectors()))

		m := NewMonitor(MonitorConfig{
			Clock: c, Array: RaiznArray{V: v},
			SuspectThreshold: 1, FailThreshold: 2,
		})

		// Fail one device administratively.
		if err := v.FailDevice(0); err != nil {
			t.Fatalf("FailDevice: %v", err)
		}
		// Push a second device over the fail threshold.
		dev, pba := dataSector(0, 0, 0, 0)
		if dev == 0 {
			dev, pba = dataSector(0, 0, 1, 0)
		}
		if err := devs[dev].InjectReadError(pba); err != nil {
			t.Fatalf("InjectReadError: %v", err)
		}
		buf := make([]byte, v.SectorSize())
		for i := 0; i < 3; i++ {
			_ = v.Read(0, buf)
		}
		m.Poll()
		if m.State(dev) == Failed {
			t.Fatal("monitor failed a second device on a degraded array")
		}
		if v.Degraded() != 0 {
			t.Fatalf("Degraded() = %d, want 0 (only the admin failure)", v.Degraded())
		}
	})
}
