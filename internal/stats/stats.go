// Package stats provides the measurement primitives used by the benchmark
// harness: a log-bucketed latency histogram with percentile queries, a
// throughput counter, and a time-series sampler for per-interval
// throughput/latency traces (Figure 10 style plots).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a log-bucketed latency histogram in the spirit of HDR
// histograms: buckets grow geometrically so relative error is bounded
// (~3.5% with 20 sub-buckets per octave) across nanoseconds to minutes.
// It is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    float64
	min    time.Duration
	max    time.Duration
}

const (
	subBuckets = 20 // sub-buckets per octave
	numOctaves = 50 // covers 1ns .. ~2^50ns (~13 days)
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, subBuckets*numOctaves),
		min:    math.MaxInt64,
	}
}

func bucketIndex(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	idx := int(math.Log2(float64(d)) * subBuckets)
	if idx >= subBuckets*numOctaves {
		idx = subBuckets*numOctaves - 1
	}
	return idx
}

func bucketValue(idx int) time.Duration {
	return time.Duration(math.Exp2(float64(idx)/subBuckets + 0.5/subBuckets))
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketIndex(d)]++
	h.total++
	h.sum += float64(d)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the latency at percentile p in [0,100], or 0 if the
// histogram is empty. The returned value is the representative value of
// the bucket containing the p-th observation.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.clampLocked(bucketValue(i))
		}
	}
	return h.max
}

// clampLocked bounds a bucket's representative value to the observed
// range: the geometric midpoint of the rank bucket can fall outside
// [min, max] (e.g. a single observation near a bucket edge), and a
// percentile must never report a value no observation could have had.
func (h *Histogram) clampLocked(v time.Duration) time.Duration {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Snapshot returns an immutable copy usable without further locking.
func (h *Histogram) Snapshot() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := make([]uint64, len(h.counts))
	copy(c, h.counts)
	return &Histogram{counts: c, total: h.total, sum: h.sum, min: h.min, max: h.max}
}

// Summary renders count/mean/p50/p99/p99.9/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Max())
}

// Counter accumulates bytes and operations for throughput reporting.
// It is safe for concurrent use.
type Counter struct {
	mu    sync.Mutex
	bytes int64
	ops   int64
}

// Add records one operation of n bytes.
func (c *Counter) Add(n int64) {
	c.mu.Lock()
	c.bytes += n
	c.ops++
	c.mu.Unlock()
}

// Bytes returns the accumulated byte count.
func (c *Counter) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Ops returns the accumulated operation count.
func (c *Counter) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Reset zeroes the counter and returns the previous (bytes, ops).
func (c *Counter) Reset() (bytes, ops int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bytes, ops = c.bytes, c.ops
	c.bytes, c.ops = 0, 0
	return bytes, ops
}

// MiBps converts a byte count over a duration to MiB/s.
func MiBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// Sample is one interval of a time series.
type Sample struct {
	T          time.Duration // end of the interval (virtual time)
	Throughput float64       // MiB/s over the interval
	Ops        int64         // operations completed in the interval
	MeanLat    time.Duration // mean latency of ops completed in the interval
	P99Lat     time.Duration
}

// Series collects per-interval samples of a running workload. The caller
// (which owns the virtual clock) invokes Tick at the end of each interval.
type Series struct {
	mu       sync.Mutex
	interval time.Duration
	counter  Counter
	hist     *Histogram
	samples  []Sample
}

// NewSeries returns a Series sampling at the given interval.
func NewSeries(interval time.Duration) *Series {
	return &Series{interval: interval, hist: NewHistogram()}
}

// Observe records one completed operation of n bytes with latency lat.
func (s *Series) Observe(n int64, lat time.Duration) {
	s.counter.Add(n)
	s.hist.Record(lat)
}

// Tick closes the current interval ending at virtual time t and starts a
// new one.
func (s *Series) Tick(t time.Duration) {
	bytes, ops := s.counter.Reset()
	s.mu.Lock()
	snap := s.hist
	s.hist = NewHistogram()
	s.samples = append(s.samples, Sample{
		T:          t,
		Throughput: MiBps(bytes, s.interval),
		Ops:        ops,
		MeanLat:    snap.Mean(),
		P99Lat:     snap.Percentile(99),
	})
	s.mu.Unlock()
}

// Samples returns the collected samples in time order.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Quantile returns the q-th quantile (0..1) of the per-sample throughput,
// useful for summarizing a time series' floor and ceiling.
func (s *Series) Quantile(q float64) float64 {
	samples := s.Samples()
	if len(samples) == 0 {
		return 0
	}
	tputs := make([]float64, len(samples))
	for i, sm := range samples {
		tputs[i] = sm.Throughput
	}
	sort.Float64s(tputs)
	idx := int(q * float64(len(tputs)-1))
	return tputs[idx]
}
