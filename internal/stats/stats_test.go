package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Errorf("min/max = %v/%v, want 100µs", h.Min(), h.Max())
	}
	p := h.Percentile(50)
	if rel := relErr(p, 100*time.Microsecond); rel > 0.05 {
		t.Errorf("p50 = %v, want ~100µs (rel err %f)", p, rel)
	}
}

func relErr(got, want time.Duration) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 500 * time.Microsecond},
		{90, 900 * time.Microsecond},
		{99, 990 * time.Microsecond},
	}
	for _, c := range cases {
		got := h.Percentile(c.p)
		if rel := relErr(got, c.want); rel > 0.06 {
			t.Errorf("p%.0f = %v, want ~%v (rel err %.3f)", c.p, got, c.want, rel)
		}
	}
	if got := h.Percentile(0); got != time.Microsecond {
		t.Errorf("p0 = %v, want exact min", got)
	}
	if got := h.Percentile(100); got != 1000*time.Microsecond {
		t.Errorf("p100 = %v, want exact max", got)
	}
}

func TestHistogramPercentileWithinRange(t *testing.T) {
	// Regression: Percentile used to return the rank bucket's geometric
	// midpoint unclamped, which for a single observation near a bucket
	// edge could fall below Min (or above Max) — an impossible value.
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	for p := 1.0; p <= 99; p++ {
		v := h.Percentile(p)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("p%.0f = %v outside observed range [%v, %v]", p, v, h.Min(), h.Max())
		}
	}

	// Property: holds for any input set, not just single observations.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(1 + rng.Int63n(int64(time.Minute))))
		}
		for p := 1.0; p <= 100; p += 3 {
			v := h.Percentile(p)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestHistogramSnapshotIsolation(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	snap := h.Snapshot()
	h.Record(time.Second)
	if snap.Count() != 1 {
		t.Errorf("snapshot count = %d, want 1", snap.Count())
	}
	if h.Count() != 2 {
		t.Errorf("live count = %d, want 2", h.Count())
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are non-decreasing in p for any input set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(1 + rng.Int63n(int64(time.Minute))))
		}
		prev := time.Duration(0)
		for p := 1.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBoundedRelativeError(t *testing.T) {
	// Property: a recorded value's bucket representative is within ~5%.
	f := func(v uint32) bool {
		d := time.Duration(v)%time.Hour + 1
		h := NewHistogram()
		h.Record(d)
		got := h.Percentile(50)
		return relErr(got, d) < 0.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(200)
	if c.Bytes() != 300 || c.Ops() != 2 {
		t.Errorf("got %d bytes / %d ops, want 300/2", c.Bytes(), c.Ops())
	}
	b, o := c.Reset()
	if b != 300 || o != 2 {
		t.Errorf("Reset returned %d/%d, want 300/2", b, o)
	}
	if c.Bytes() != 0 || c.Ops() != 0 {
		t.Error("Reset did not zero counter")
	}
}

func TestMiBps(t *testing.T) {
	if got := MiBps(1<<20, time.Second); got != 1.0 {
		t.Errorf("MiBps(1MiB, 1s) = %f, want 1", got)
	}
	if got := MiBps(123, 0); got != 0 {
		t.Errorf("MiBps with zero duration = %f, want 0", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(time.Second)
	s.Observe(1<<20, time.Millisecond)
	s.Observe(1<<20, 3*time.Millisecond)
	s.Tick(time.Second)
	s.Observe(4<<20, 2*time.Millisecond)
	s.Tick(2 * time.Second)
	s.Tick(3 * time.Second) // idle interval

	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if samples[0].Throughput != 2.0 {
		t.Errorf("sample 0 throughput = %f, want 2", samples[0].Throughput)
	}
	if samples[0].Ops != 2 || samples[0].MeanLat != 2*time.Millisecond {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	if samples[1].Throughput != 4.0 {
		t.Errorf("sample 1 throughput = %f, want 4", samples[1].Throughput)
	}
	if samples[2].Throughput != 0 || samples[2].Ops != 0 {
		t.Errorf("idle sample = %+v, want zeros", samples[2])
	}
}

func TestSeriesQuantile(t *testing.T) {
	s := NewSeries(time.Second)
	for i := 1; i <= 10; i++ {
		s.Observe(int64(i)<<20, time.Millisecond)
		s.Tick(time.Duration(i) * time.Second)
	}
	if q := s.Quantile(0); q != 1.0 {
		t.Errorf("Quantile(0) = %f, want 1", q)
	}
	if q := s.Quantile(1); q != 10.0 {
		t.Errorf("Quantile(1) = %f, want 10", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i+1) * time.Microsecond)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}
