// Package vclock implements a deterministic virtual-time scheduler for
// discrete-event simulation of storage systems.
//
// Simulated code runs on ordinary goroutines that are registered with a
// Clock. Whenever every registered goroutine is blocked in one of the
// package's primitives (Sleep, Future.Wait, Cond.Wait, WaitGroup.Wait),
// virtual time advances to the next pending timer event and the goroutine
// owning that event resumes. Real time never passes inside a simulation:
// the host CPU only bounds how fast the simulation executes, never what it
// measures.
//
// Rules for simulated code:
//
//   - Only goroutines started via Clock.Run, Clock.Go, or Clock.AfterFunc
//     may call blocking primitives.
//   - Never block in a vclock primitive while holding a sync.Mutex that a
//     peer needs in order to make progress; release locks before waiting
//     (Cond handles the common monitor pattern).
//   - Cross-goroutine signalling must use Future, Cond or WaitGroup, never
//     bare channels, or the scheduler's idle detection deadlocks.
//
// If every registered goroutine is parked and no timer is pending, the
// simulation can never progress; the Clock panics with a diagnostic rather
// than hanging.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual-time event scheduler. The zero value is not usable;
// call New.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration // virtual time since simulation start
	running int           // registered goroutines currently runnable
	parked  int           // goroutines blocked on Future/Cond/WaitGroup
	events  eventHeap     // pending timer events
	seq     uint64        // FIFO tie-break for simultaneous events
	dead    bool          // set after a deadlock panic to stop re-dispatching
}

type event struct {
	at  time.Duration
	seq uint64
	ch  chan struct{} // closed to resume the sleeping goroutine
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// New returns a Clock whose virtual time starts at zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from simulation start.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Run executes fn on the calling goroutine as a registered simulated
// goroutine and returns when fn returns. Other registered goroutines may
// still be live afterwards; they continue to be scheduled by whichever
// registered goroutines remain.
func (c *Clock) Run(fn func()) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	defer c.exit()
	fn()
}

// Go starts fn on a new registered goroutine. It may be called from
// simulated or non-simulated code.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	go func() {
		defer c.exit()
		fn()
	}()
}

// AfterFunc runs fn on a new registered goroutine after d of virtual time.
func (c *Clock) AfterFunc(d time.Duration, fn func()) {
	c.Go(func() {
		c.Sleep(d)
		fn()
	})
}

// Sleep suspends the calling registered goroutine for d of virtual time.
// Non-positive durations yield without advancing time.
func (c *Clock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ch := make(chan struct{})
	c.mu.Lock()
	heap.Push(&c.events, &event{at: c.now + d, seq: c.seq, ch: ch})
	c.seq++
	c.running--
	c.dispatchLocked()
	c.mu.Unlock()
	<-ch
}

// exit deregisters the calling goroutine.
func (c *Clock) exit() {
	c.mu.Lock()
	c.running--
	c.dispatchLocked()
	c.mu.Unlock()
}

// park blocks the calling registered goroutine until ch is closed by a
// peer (via unpark). It must be called without holding c.mu.
func (c *Clock) park(ch chan struct{}) {
	c.mu.Lock()
	c.running--
	c.parked++
	c.dispatchLocked()
	c.mu.Unlock()
	<-ch
}

// unpark marks n parked goroutines runnable again. The caller is
// responsible for closing their channels afterwards.
func (c *Clock) unpark(n int) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.parked -= n
	c.running += n
	c.mu.Unlock()
}

// dispatchLocked advances virtual time while no goroutine is runnable.
// Caller holds c.mu.
func (c *Clock) dispatchLocked() {
	for c.running == 0 && !c.dead {
		if c.events.Len() == 0 {
			if c.parked > 0 {
				c.dead = true
				msg := fmt.Sprintf("vclock: deadlock: %d goroutine(s) parked at t=%v with no pending events", c.parked, c.now)
				c.mu.Unlock() // release so unwinding through exit() cannot self-deadlock
				panic(msg)
			}
			return // simulation idle with nothing registered
		}
		ev := heap.Pop(&c.events).(*event)
		if ev.at > c.now {
			c.now = ev.at
		}
		c.running++
		close(ev.ch)
	}
}

// Future is a one-shot completion. It is created by NewFuture, completed
// exactly once by Complete or CompleteAfter, and waited on by any number
// of registered goroutines.
type Future struct {
	c    *Clock
	mu   sync.Mutex
	done bool
	err  error
	chs  []chan struct{}
	cbs  []func(error)
}

// NewFuture returns an incomplete Future bound to the clock.
func (c *Clock) NewFuture() *Future { return &Future{c: c} }

// NewFutureSlab returns n incomplete Futures allocated in one block,
// amortizing allocation across a batch of commands (use &slab[i]).
// Slab futures must never be reused: like any Future they complete
// exactly once and may be referenced by waiters afterwards.
func (c *Clock) NewFutureSlab(n int) []Future {
	slab := make([]Future, n)
	for i := range slab {
		slab[i].c = c
	}
	return slab
}

// Done reports whether the future has completed.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Err returns the completion error. It must only be called after the
// future is known to be complete.
func (f *Future) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		panic("vclock: Err on incomplete Future")
	}
	return f.err
}

// Complete resolves the future with err, waking all waiters. Completing a
// future twice panics.
func (f *Future) Complete(err error) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		panic("vclock: Future completed twice")
	}
	f.done = true
	f.err = err
	chs := f.chs
	f.chs = nil
	cbs := f.cbs
	f.cbs = nil
	f.mu.Unlock()
	f.c.unpark(len(chs))
	for _, ch := range chs {
		close(ch)
	}
	for _, cb := range cbs {
		cb(err)
	}
}

// Subscribe registers fn to run when the future completes, without
// parking a goroutine on it. If the future is already complete, fn runs
// inline. Otherwise fn runs on the completing goroutine (a registered
// simulated goroutine), after waiters have been woken; fn must not block
// in vclock primitives and must not complete this same future.
func (f *Future) Subscribe(fn func(error)) {
	f.mu.Lock()
	if f.done {
		err := f.err
		f.mu.Unlock()
		fn(err)
		return
	}
	f.cbs = append(f.cbs, fn)
	f.mu.Unlock()
}

// CompleteAfter schedules the future to resolve with err after d of
// virtual time. It may be called from simulated or non-simulated code.
func (f *Future) CompleteAfter(d time.Duration, err error) {
	f.c.AfterFunc(d, func() { f.Complete(err) })
}

// Wait blocks the calling registered goroutine until the future completes
// and returns its error.
func (f *Future) Wait() error {
	f.mu.Lock()
	if f.done {
		err := f.err
		f.mu.Unlock()
		return err
	}
	ch := make(chan struct{})
	f.chs = append(f.chs, ch)
	f.mu.Unlock()
	f.c.park(ch)
	f.mu.Lock()
	err := f.err
	f.mu.Unlock()
	return err
}

// Completed returns an already-resolved future, useful for fast paths that
// complete synchronously.
func (c *Clock) Completed(err error) *Future {
	return &Future{c: c, done: true, err: err}
}

// WaitAll waits for every future and returns the first non-nil error.
func WaitAll(futs ...*Future) error {
	var first error
	for _, f := range futs {
		if f == nil {
			continue
		}
		if err := f.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Cond is a virtual-time condition variable associated with a sync.Mutex
// monitor, mirroring sync.Cond semantics.
type Cond struct {
	c   *Clock
	L   sync.Locker
	mu  sync.Mutex
	chs []chan struct{}
}

// NewCond returns a Cond that uses l as its monitor lock.
func (c *Clock) NewCond(l sync.Locker) *Cond { return &Cond{c: c, L: l} }

// Wait atomically unlocks the monitor and parks until Broadcast or Signal,
// then relocks before returning. As with sync.Cond, callers must re-check
// their predicate in a loop.
func (cv *Cond) Wait() {
	ch := make(chan struct{})
	cv.mu.Lock()
	cv.chs = append(cv.chs, ch)
	cv.mu.Unlock()
	cv.L.Unlock()
	cv.c.park(ch)
	cv.L.Lock()
}

// Broadcast wakes all parked waiters.
func (cv *Cond) Broadcast() {
	cv.mu.Lock()
	chs := cv.chs
	cv.chs = nil
	cv.mu.Unlock()
	cv.c.unpark(len(chs))
	for _, ch := range chs {
		close(ch)
	}
}

// Signal wakes one parked waiter, if any.
func (cv *Cond) Signal() {
	cv.mu.Lock()
	var ch chan struct{}
	if len(cv.chs) > 0 {
		ch = cv.chs[0]
		cv.chs = cv.chs[1:]
	}
	cv.mu.Unlock()
	if ch != nil {
		cv.c.unpark(1)
		close(ch)
	}
}

// WaitGroup is a virtual-time analog of sync.WaitGroup.
type WaitGroup struct {
	c   *Clock
	mu  sync.Mutex
	n   int
	chs []chan struct{}
}

// NewWaitGroup returns an empty WaitGroup bound to the clock.
func (c *Clock) NewWaitGroup() *WaitGroup { return &WaitGroup{c: c} }

// Add adds delta to the counter. A counter that would go negative panics.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("vclock: negative WaitGroup counter")
	}
	var chs []chan struct{}
	if w.n == 0 {
		chs = w.chs
		w.chs = nil
	}
	w.mu.Unlock()
	w.c.unpark(len(chs))
	for _, ch := range chs {
		close(ch)
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks the calling registered goroutine until the counter is zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	w.chs = append(w.chs, ch)
	w.mu.Unlock()
	w.c.park(ch)
}
