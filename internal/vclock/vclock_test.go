package vclock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	c := New()
	start := time.Now()
	c.Run(func() {
		c.Sleep(5 * time.Hour)
		if got := c.Now(); got != 5*time.Hour {
			t.Errorf("Now() = %v, want 5h", got)
		}
	})
	if real := time.Since(start); real > 2*time.Second {
		t.Errorf("virtual sleep took %v of real time", real)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	c := New()
	c.Run(func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		if got := c.Now(); got != 0 {
			t.Errorf("Now() = %v, want 0", got)
		}
	})
}

func TestConcurrentSleepersOrdering(t *testing.T) {
	c := New()
	var mu sync.Mutex
	var order []int
	wg := c.NewWaitGroup()
	c.Run(func() {
		for i := 5; i >= 1; i-- {
			i := i
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				c.Sleep(time.Duration(i) * time.Millisecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	if len(order) != 5 {
		t.Fatalf("got %d wakeups, want 5", len(order))
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("wakeup order %v, want ascending 1..5", order)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	c := New()
	var mu sync.Mutex
	var order []int
	wg := c.NewWaitGroup()
	c.Run(func() {
		for i := 0; i < 10; i++ {
			i := i
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				c.Sleep(time.Millisecond) // all wake at the same instant
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	if len(order) != 10 {
		t.Fatalf("got %d wakeups, want 10", len(order))
	}
}

func TestFutureCompleteBeforeWait(t *testing.T) {
	c := New()
	c.Run(func() {
		f := c.NewFuture()
		f.Complete(nil)
		if !f.Done() {
			t.Error("Done() = false after Complete")
		}
		if err := f.Wait(); err != nil {
			t.Errorf("Wait() = %v, want nil", err)
		}
	})
}

func TestFutureCompleteAfter(t *testing.T) {
	c := New()
	errBoom := errors.New("boom")
	c.Run(func() {
		f := c.NewFuture()
		f.CompleteAfter(3*time.Second, errBoom)
		if err := f.Wait(); err != errBoom {
			t.Errorf("Wait() = %v, want boom", err)
		}
		if got := c.Now(); got != 3*time.Second {
			t.Errorf("Now() = %v, want 3s", got)
		}
	})
}

func TestFutureMultipleWaiters(t *testing.T) {
	c := New()
	var woken int32
	c.Run(func() {
		f := c.NewFuture()
		wg := c.NewWaitGroup()
		for i := 0; i < 8; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				if err := f.Wait(); err != nil {
					t.Errorf("Wait() = %v", err)
				}
				atomic.AddInt32(&woken, 1)
			})
		}
		f.CompleteAfter(time.Second, nil)
		wg.Wait()
	})
	if woken != 8 {
		t.Errorf("woken = %d, want 8", woken)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	c := New()
	c.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double Complete")
			}
		}()
		f := c.NewFuture()
		f.Complete(nil)
		f.Complete(nil)
	})
}

func TestCompletedFuture(t *testing.T) {
	c := New()
	errX := errors.New("x")
	c.Run(func() {
		if err := c.Completed(errX).Wait(); err != errX {
			t.Errorf("Wait() = %v, want x", err)
		}
	})
}

func TestWaitAllReturnsFirstError(t *testing.T) {
	c := New()
	e1, e2 := errors.New("first"), errors.New("second")
	c.Run(func() {
		f1, f2, f3 := c.NewFuture(), c.NewFuture(), c.NewFuture()
		f1.CompleteAfter(time.Second, nil)
		f2.CompleteAfter(2*time.Second, e1)
		f3.CompleteAfter(3*time.Second, e2)
		if err := WaitAll(f1, f2, f3, nil); err != e1 {
			t.Errorf("WaitAll = %v, want first", err)
		}
	})
}

func TestCondBroadcast(t *testing.T) {
	c := New()
	var mu sync.Mutex
	cond := c.NewCond(&mu)
	ready := 0
	c.Run(func() {
		wg := c.NewWaitGroup()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				mu.Lock()
				for ready == 0 {
					cond.Wait()
				}
				mu.Unlock()
			})
		}
		c.Sleep(time.Second)
		mu.Lock()
		ready = 1
		cond.Broadcast()
		mu.Unlock()
		wg.Wait()
	})
}

func TestCondSignalWakesOne(t *testing.T) {
	c := New()
	var mu sync.Mutex
	cond := c.NewCond(&mu)
	tokens := 0
	var served int32
	c.Run(func() {
		wg := c.NewWaitGroup()
		for i := 0; i < 3; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				mu.Lock()
				for tokens == 0 {
					cond.Wait()
				}
				tokens--
				mu.Unlock()
				atomic.AddInt32(&served, 1)
			})
		}
		for i := 0; i < 3; i++ {
			c.Sleep(time.Millisecond)
			mu.Lock()
			tokens++
			cond.Signal()
			mu.Unlock()
		}
		wg.Wait()
	})
	if served != 3 {
		t.Errorf("served = %d, want 3", served)
	}
}

func TestWaitGroupImmediateWait(t *testing.T) {
	c := New()
	c.Run(func() {
		wg := c.NewWaitGroup()
		wg.Wait() // counter already zero: must not block
	})
}

func TestDeadlockDetection(t *testing.T) {
	c := New()
	done := make(chan interface{}, 1)
	go func() {
		defer func() { done <- recover() }()
		c.Run(func() {
			f := c.NewFuture()
			f.Wait() // nobody will ever complete this
		})
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Error("expected deadlock panic, got clean return")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock was not detected")
	}
}

func TestAfterFunc(t *testing.T) {
	c := New()
	var at time.Duration
	c.Run(func() {
		f := c.NewFuture()
		c.AfterFunc(42*time.Millisecond, func() {
			at = c.Now()
			f.Complete(nil)
		})
		f.Wait()
	})
	if at != 42*time.Millisecond {
		t.Errorf("fired at %v, want 42ms", at)
	}
}

func TestNestedGoKeepsTimeCoherent(t *testing.T) {
	c := New()
	var t1, t2 time.Duration
	c.Run(func() {
		wg := c.NewWaitGroup()
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			c.Sleep(10 * time.Millisecond)
			t1 = c.Now()
			inner := c.NewWaitGroup()
			inner.Add(1)
			c.Go(func() {
				defer inner.Done()
				c.Sleep(5 * time.Millisecond)
				t2 = c.Now()
			})
			inner.Wait()
		})
		wg.Wait()
	})
	if t1 != 10*time.Millisecond || t2 != 15*time.Millisecond {
		t.Errorf("t1=%v t2=%v, want 10ms/15ms", t1, t2)
	}
}

func TestManyIOsPerformance(t *testing.T) {
	// Smoke test that goroutine-per-IO scales to tens of thousands.
	c := New()
	const n = 20000
	var completed int32
	c.Run(func() {
		wg := c.NewWaitGroup()
		for i := 0; i < n; i++ {
			wg.Add(1)
			f := c.NewFuture()
			f.CompleteAfter(time.Duration(i%100)*time.Microsecond, nil)
			c.Go(func() {
				defer wg.Done()
				f.Wait()
				atomic.AddInt32(&completed, 1)
			})
		}
		wg.Wait()
	})
	if completed != n {
		t.Errorf("completed = %d, want %d", completed, n)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	c := New()
	c.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative counter")
			}
		}()
		wg := c.NewWaitGroup()
		wg.Done()
	})
}

func TestCondStressManyWaiters(t *testing.T) {
	c := New()
	var mu sync.Mutex
	cond := c.NewCond(&mu)
	token := 0
	var served int32
	c.Run(func() {
		wg := c.NewWaitGroup()
		const n = 50
		for i := 0; i < n; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				mu.Lock()
				for token == 0 {
					cond.Wait()
				}
				token--
				mu.Unlock()
				atomic.AddInt32(&served, 1)
			})
		}
		// Release waiters in bursts interleaved with virtual time.
		for released := 0; released < n; {
			c.Sleep(time.Millisecond)
			mu.Lock()
			burst := 7
			if released+burst > n {
				burst = n - released
			}
			token += burst
			released += burst
			cond.Broadcast()
			mu.Unlock()
		}
		wg.Wait()
	})
	if served != 50 {
		t.Errorf("served = %d, want 50", served)
	}
}

func TestSleepOrderingUnderConcurrentSpawns(t *testing.T) {
	// Spawning goroutines while others sleep must never run events out
	// of order: record the virtual timestamps at wake-up.
	c := New()
	var mu sync.Mutex
	var stamps []time.Duration
	c.Run(func() {
		wg := c.NewWaitGroup()
		for i := 0; i < 30; i++ {
			d := time.Duration(30-i) * time.Millisecond
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				c.Sleep(d)
				mu.Lock()
				stamps = append(stamps, c.Now())
				mu.Unlock()
			})
			c.Sleep(time.Microsecond)
		}
		wg.Wait()
	})
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("wakeup timestamps regressed: %v", stamps)
		}
	}
}
