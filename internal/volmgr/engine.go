package volmgr

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// EngineConfig tunes one volume's async submission engine.
type EngineConfig struct {
	// QueueDepth bounds each tenant's submission queue; a submit against
	// a full queue is shed with a ThrottledError. Default 64.
	QueueDepth int
	// MaxInflight bounds requests issued to the arrays but not yet
	// completed. Default 64.
	MaxInflight int
	// BatchSize bounds how many requests one scheduling round dequeues
	// before issuing. Default 16.
	BatchSize int
	// QuantumSectors is the deficit-round-robin quantum credited per
	// unit of tenant weight each scheduling round. Default 64.
	QuantumSectors int64
	// NoCoalesce disables merging physically contiguous writes.
	NoCoalesce bool
	// SLO configures the volume's per-tenant SLO alarm.
	SLO obs.SLOConfig
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.QuantumSectors <= 0 {
		c.QuantumSectors = 64
	}
	return c
}

type opKind int

const (
	opWrite opKind = iota
	opRead
)

// request is one queued client IO. sectors is redundant with len(data)
// but sits on every scheduling decision, so it is computed once.
type request struct {
	tn      *tenant
	tid     string
	kind    opKind
	lba     int64
	data    []byte
	flags   zns.Flag
	sectors int64
	submitT time.Duration
	fut     *vclock.Future
}

// engine is one volume's submission engine: per-tenant FIFO queues in
// front, a single dispatcher goroutine in the middle, the volume's
// extent map and arrays behind. The single dispatcher is what lets
// thousands of client goroutines share the ticket-ordered array write
// path without per-client lock convoys: clients only append to their
// queue; all scheduling, coalescing, and issue order is decided in one
// place, which also keeps per-zone write ordering deterministic.
type engine struct {
	v   *Volume
	cfg EngineConfig

	alarm *obs.SLOAlarm

	mu       sync.Mutex
	work     *vclock.Cond // dispatcher parks here for new work / freed window
	idle     *vclock.Cond // drain/close waiters park here
	tenants  map[string]*tenant
	order    []string // registration order; also the DRR ring order
	ring     int      // persistent DRR ring position
	turn     bool     // the flow at ring has an open (quantum-credited) turn
	queued   int      // requests in tenant queues
	inflight int      // requests issued to arrays, not yet completed
	started  bool
	closed   bool
	done     bool

	dispatched *obs.Counter // requests issued to arrays
	batches    *obs.Counter // scheduling rounds that issued at least one request
	coalesced  *obs.Counter // requests merged into a preceding array command
}

func newEngine(v *Volume, cfg EngineConfig) *engine {
	cfg = cfg.withDefaults()
	e := &engine{
		v:       v,
		cfg:     cfg,
		alarm:   obs.NewSLOAlarm(cfg.SLO),
		tenants: make(map[string]*tenant),
	}
	e.work = v.clk.NewCond(&e.mu)
	e.idle = v.clk.NewCond(&e.mu)

	n := func(name string) string { return obs.LabeledName(name, "volume", v.name) }
	e.dispatched = v.reg.Counter(n("volmgr_dispatched_total"))
	e.batches = v.reg.Counter(n("volmgr_batches_total"))
	e.coalesced = v.reg.Counter(n("volmgr_coalesced_requests_total"))
	v.reg.GaugeFunc(n("volmgr_queued"), func() int64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return int64(e.queued)
	})
	v.reg.GaugeFunc(n("volmgr_inflight"), func() int64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return int64(e.inflight)
	})
	v.reg.Help("volmgr_dispatched_total", "requests issued to the hosted arrays")
	v.reg.Help("volmgr_batches_total", "scheduling rounds that issued at least one request")
	v.reg.Help("volmgr_coalesced_requests_total", "requests merged into a preceding contiguous array write")
	v.reg.Help("volmgr_queued", "requests waiting in tenant submission queues")
	v.reg.Help("volmgr_inflight", "requests issued but not yet completed")
	return e
}

// addTenant registers a tenant and its metric series.
func (e *engine) addTenant(cfg TenantConfig) error {
	if cfg.ID == "" {
		return fmt.Errorf("volmgr: tenant needs an id")
	}
	cfg = cfg.withDefaults()
	now := e.v.clk.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tenants[cfg.ID]; ok {
		return fmt.Errorf("volmgr: tenant %q already registered", cfg.ID)
	}
	n := func(name string) string {
		return obs.LabeledName(name, "tenant", cfg.ID, "volume", e.v.name)
	}
	t := &tenant{
		cfg:     cfg,
		bytesTB: newBucket(cfg.RateSectorsPerSec, cfg.BurstSectors, now),
		iopsTB:  newBucket(cfg.IOPS, cfg.IOPSBurst, now),

		accepted:       e.v.reg.Counter(n("volmgr_requests_accepted_total")),
		shed:           e.v.reg.Counter(n("volmgr_requests_shed_total")),
		completedOps:   e.v.reg.Counter(n("volmgr_requests_completed_total")),
		completedBytes: e.v.reg.Counter(n("volmgr_completed_bytes")),
		errored:        e.v.reg.Counter(n("volmgr_requests_errored_total")),
		lat:            e.v.reg.Histogram(n("volmgr_request_latency")),
		queueDelay:     e.v.reg.Histogram(n("volmgr_queue_delay")),
		perArray:       make(map[string]*arrayAgg),
	}
	e.v.reg.Help("volmgr_requests_accepted_total", "requests admitted into a tenant submission queue")
	e.v.reg.Help("volmgr_requests_shed_total", "requests shed by admission control (tenant queue full)")
	e.v.reg.Help("volmgr_requests_completed_total", "requests completed successfully")
	e.v.reg.Help("volmgr_completed_bytes", "bytes moved by successfully completed requests")
	e.v.reg.Help("volmgr_requests_errored_total", "requests completed with an error")
	e.v.reg.Help("volmgr_request_latency", "submit-to-completion latency (queue plus service)")
	e.v.reg.Help("volmgr_queue_delay", "submit-to-array-issue delay")
	e.tenants[cfg.ID] = t
	e.order = append(e.order, cfg.ID)
	return nil
}

// start launches the dispatcher. Must be called exactly once, from the
// manager, before any submission.
func (e *engine) start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	e.v.clk.Go(e.dispatcherLoop)
}

// submit validates, admits, and enqueues one request. Validation errors
// and admission rejections surface synchronously; everything else is
// reported through the returned future.
func (e *engine) submit(tid string, kind opKind, lba int64, data []byte, flags zns.Flag) (*vclock.Future, error) {
	ss := int64(e.v.sectorSize)
	if len(data) == 0 || int64(len(data))%ss != 0 {
		return nil, ErrUnaligned
	}
	sectors := int64(len(data)) / ss
	if _, _, err := e.v.locate(lba, sectors); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	t := e.tenants[tid]
	if t == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tid)
	}
	if len(t.q) >= e.cfg.QueueDepth {
		t.shed.Inc()
		e.mu.Unlock()
		return nil, &ThrottledError{
			Volume: e.v.name,
			Tenant: tid,
			Reason: fmt.Sprintf("queue full (depth %d)", e.cfg.QueueDepth),
		}
	}
	r := &request{
		tn:      t,
		tid:     tid,
		kind:    kind,
		lba:     lba,
		data:    data,
		flags:   flags,
		sectors: sectors,
		submitT: e.v.clk.Now(),
		fut:     e.v.clk.NewFuture(),
	}
	t.q = append(t.q, r)
	t.accepted.Inc()
	e.queued++
	e.mu.Unlock()
	e.work.Signal()
	return r.fut, nil
}

// dispatcherLoop is the engine's single scheduling goroutine. Each
// iteration either issues a batch, sleeps until the earliest token-
// bucket refill admits someone, or parks until a submit or completion
// changes the picture.
func (e *engine) dispatcherLoop() {
	e.mu.Lock()
	for {
		if e.inflight < e.cfg.MaxInflight {
			batch, wait := e.scheduleLocked()
			if len(batch) > 0 {
				e.inflight += len(batch)
				e.batches.Inc()
				e.dispatched.Add(int64(len(batch)))
				e.mu.Unlock()
				e.issue(batch)
				e.mu.Lock()
				continue
			}
			if wait > 0 {
				// Every backlogged tenant is token-limited; the earliest
				// refill is the next interesting instant. New submissions
				// during the sleep are picked up on the rescan.
				e.mu.Unlock()
				e.v.clk.Sleep(wait)
				e.mu.Lock()
				continue
			}
		}
		if e.closed && e.queued == 0 && e.inflight == 0 {
			e.done = true
			e.mu.Unlock()
			e.idle.Broadcast()
			return
		}
		e.work.Wait()
	}
}

// scheduleLocked runs deficit round robin over the tenant ring and
// returns the next batch to issue. When every backlogged tenant is
// blocked on a token bucket it instead returns the shortest refill
// wait. Caller holds e.mu.
//
// A flow's turn opens with one quantum×weight credit and stays open —
// across scheduleLocked calls, surviving in-flight-window interruptions
// — until its deficit no longer covers its head request; only then does
// the ring advance. Rotating (or re-crediting) per call instead would
// collapse to one-request-per-tenant alternation whenever the window
// frees slots one at a time, erasing the weights.
func (e *engine) scheduleLocked() ([]*request, time.Duration) {
	if e.queued == 0 || len(e.order) == 0 {
		return nil, 0
	}
	now := e.v.clk.Now()
	limit := e.cfg.BatchSize
	if w := e.cfg.MaxInflight - e.inflight; w < limit {
		limit = w
	}
	var batch []*request
	minWait := time.Duration(-1)
	// fruitless counts consecutive ended turns that served nothing and
	// were not deficit-blocked; a full ring of those means every
	// backlogged flow is token-limited (or nothing is queued).
	for fruitless := 0; fruitless < len(e.order); {
		t := e.tenants[e.order[e.ring%len(e.order)]]
		if len(t.q) == 0 {
			t.deficit = 0 // classic DRR: no credit hoarding while idle
			e.ring++
			e.turn = false
			fruitless++
			continue
		}
		if !e.turn {
			t.deficit += int64(t.cfg.Weight) * e.cfg.QuantumSectors
			// Cap the deficit at "enough for the head plus one quantum":
			// guarantees the head is eventually affordable while bounding
			// the burst a long-blocked tenant can unleash later.
			if max := t.q[0].sectors + int64(t.cfg.Weight)*e.cfg.QuantumSectors; t.deficit > max {
				t.deficit = max
			}
			e.turn = true
		}
		served := false
		tokenBlocked := false
		for len(t.q) > 0 && len(batch) < limit {
			r := t.q[0]
			if r.sectors > t.deficit {
				break
			}
			if w := t.tokenETA(r, now); w > 0 {
				if minWait < 0 || w < minWait {
					minWait = w
				}
				tokenBlocked = true
				break
			}
			t.takeTokens(r, now)
			t.deficit -= r.sectors
			t.q = t.q[1:]
			e.queued--
			batch = append(batch, r)
			served = true
		}
		if len(batch) >= limit {
			return batch, 0 // turn stays open; resume this flow next call
		}
		// The flow could not fill the batch: its turn is over.
		if len(t.q) == 0 {
			t.deficit = 0
		}
		e.ring++
		e.turn = false
		switch {
		case served:
			fruitless = 0
		case tokenBlocked:
			fruitless++
		default:
			// Deficit-blocked: the next arrival credits another quantum,
			// so progress is guaranteed; keep cycling.
			fruitless = 0
		}
	}
	if len(batch) > 0 {
		return batch, 0
	}
	if minWait < 0 {
		minWait = 0
	}
	return nil, minWait
}

// issue translates a batch through the extent map and submits it to the
// arrays in batch order, merging runs of physically contiguous writes
// from the same tenant with identical flags into one array command.
// Issue order is the only writer of each zone's write pointer, so
// per-tenant FIFO submission keeps per-zone sequential semantics.
func (e *engine) issue(batch []*request) {
	now := e.v.clk.Now()
	for _, r := range batch {
		r.tn.queueDelay.Record(now - r.submitT)
	}
	for i := 0; i < len(batch); {
		r := batch[i]
		run := batch[i : i+1]
		if r.kind == opWrite && !e.cfg.NoCoalesce {
			end := r.lba + r.sectors
			for j := i + 1; j < len(batch); j++ {
				nx := batch[j]
				if nx.kind != opWrite || nx.tn != r.tn || nx.flags != r.flags ||
					nx.lba != end || nx.lba/e.v.zoneSectors != r.lba/e.v.zoneSectors {
					break
				}
				end = nx.lba + nx.sectors
				run = batch[i : j+1]
			}
		}
		e.issueRun(run)
		i += len(run)
	}
}

// issueRun submits one run (a single request, or coalesced contiguous
// writes) and subscribes run completion onto the volume future — no
// waiter goroutine per run; the completion callback rides whichever
// goroutine resolves the future (the ring's CQ walker in ring mode).
func (e *engine) issueRun(run []*request) {
	r0 := run[0]
	ext, arrLBA, err := e.v.locate(r0.lba, r0.sectors) // revalidated at submit; cannot fail
	if err != nil {
		e.completeRun(run, "", err)
		return
	}
	var fut *vclock.Future
	switch {
	case r0.kind == opRead:
		fut = ext.arr.vol.SubmitRead(arrLBA, r0.data)
	case len(run) == 1:
		fut = ext.arr.vol.SubmitWrite(arrLBA, r0.data, r0.flags)
	default:
		total := 0
		for _, r := range run {
			total += len(r.data)
		}
		buf := make([]byte, 0, total)
		for _, r := range run {
			buf = append(buf, r.data...)
		}
		fut = ext.arr.vol.SubmitWrite(arrLBA, buf, r0.flags)
		e.coalesced.Add(int64(len(run) - 1))
	}
	fut.Subscribe(func(err error) {
		e.completeRun(run, ext.arr.id, err)
	})
}

// completeRun resolves a run's futures, feeds latency and per-array
// attribution accounting, and returns the run's slots to the in-flight
// window. arrayID names the array the run was issued against ("" when
// the run never reached an array).
func (e *engine) completeRun(run []*request, arrayID string, err error) {
	now := e.v.clk.Now()
	ss := int64(e.v.sectorSize)
	for _, r := range run {
		lat := now - r.submitT
		r.tn.lat.Record(lat)
		e.alarm.Observe(r.tid, lat)
		if err != nil {
			r.tn.errored.Inc()
		} else {
			r.tn.completedOps.Inc()
			r.tn.completedBytes.Add(r.sectors * ss)
		}
		r.fut.Complete(err)
	}
	e.mu.Lock()
	if arrayID != "" {
		for _, r := range run {
			ag := r.tn.perArray[arrayID]
			if ag == nil {
				ag = &arrayAgg{}
				r.tn.perArray[arrayID] = ag
			}
			ag.ops++
			ag.latSum += now - r.submitT
			if err != nil {
				ag.errs++
			}
		}
	}
	e.inflight -= len(run)
	idle := e.inflight == 0
	e.mu.Unlock()
	e.work.Signal()
	if idle {
		e.idle.Broadcast()
	}
}

// drainInflight parks the caller until the in-flight window is
// momentarily empty. Queued-but-unissued requests are not waited for:
// a flush orders against IO that has been issued, nothing more.
func (e *engine) drainInflight() {
	e.mu.Lock()
	for e.inflight > 0 {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// close stops admissions, lets everything already accepted complete,
// and waits for the dispatcher to exit. Idempotent.
func (e *engine) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.work.Signal()
	e.mu.Lock()
	for !e.done {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// ArrayAttribution summarizes one tenant's completions against one
// hosted array — the evidence an incident report uses to rank arrays.
type ArrayAttribution struct {
	Array   string
	Ops     int64
	Errors  int64
	MeanLat time.Duration
}

// tenantArrayAttribution ranks the arrays a tenant's completions landed
// on, most-implicated first: errors, then mean latency, then traffic
// volume, with array id as the final tiebreak so the order is
// deterministic run to run.
func (e *engine) tenantArrayAttribution(tid string) []ArrayAttribution {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.tenants[tid]
	if t == nil {
		return nil
	}
	out := make([]ArrayAttribution, 0, len(t.perArray))
	for id, ag := range t.perArray {
		a := ArrayAttribution{Array: id, Ops: ag.ops, Errors: ag.errs}
		if ag.ops > 0 {
			a.MeanLat = ag.latSum / time.Duration(ag.ops)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Errors != out[j].Errors {
			return out[i].Errors > out[j].Errors
		}
		if out[i].MeanLat != out[j].MeanLat {
			return out[i].MeanLat > out[j].MeanLat
		}
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].Array < out[j].Array
	})
	return out
}

// tenantStats snapshots every tenant's counters in registration order.
func (e *engine) tenantStats() []TenantStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]TenantStats, 0, len(e.order))
	for _, id := range e.order {
		t := e.tenants[id]
		out = append(out, TenantStats{
			ID:             id,
			Weight:         t.cfg.Weight,
			Accepted:       t.accepted.Load(),
			Shed:           t.shed.Load(),
			CompletedOps:   t.completedOps.Load(),
			CompletedBytes: t.completedBytes.Load(),
			Errored:        t.errored.Load(),
			Latency:        t.lat.Snapshot(),
			QueueDelay:     t.queueDelay.Snapshot(),
		})
	}
	return out
}

// TenantStats snapshots the volume's per-tenant counters in tenant
// registration order.
func (v *Volume) TenantStats() []TenantStats { return v.eng.tenantStats() }
