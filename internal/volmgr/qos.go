package volmgr

import (
	"time"

	"raizn/internal/obs"
	"raizn/internal/stats"
)

// TenantConfig describes one tenant's share and limits.
type TenantConfig struct {
	// ID names the tenant; it becomes the tenant label on metrics.
	ID string
	// Weight is the tenant's fair-share weight at dequeue (deficit
	// round robin). Zero means 1.
	Weight int
	// RateSectorsPerSec is a token-bucket throughput ceiling in sectors
	// per second of virtual time. Zero means unlimited.
	RateSectorsPerSec int64
	// BurstSectors is the bucket capacity. Zero picks one second of
	// rate (or nothing when unlimited).
	BurstSectors int64
	// IOPS is a request-rate ceiling. Zero means unlimited.
	IOPS int64
	// IOPSBurst is the request bucket's capacity. Zero picks one second
	// of IOPS.
	IOPSBurst int64
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.BurstSectors == 0 {
		c.BurstSectors = c.RateSectorsPerSec
	}
	if c.IOPSBurst == 0 {
		c.IOPSBurst = c.IOPS
	}
	return c
}

// tokenBucket is a virtual-time token bucket. rate 0 disables it.
type tokenBucket struct {
	rate   float64 // tokens per second of virtual time
	burst  float64
	tokens float64
	last   time.Duration
}

func newBucket(rate, burst int64, now time.Duration) tokenBucket {
	b := tokenBucket{rate: float64(rate), burst: float64(burst), last: now}
	b.tokens = b.burst // start full: the first burst is free
	return b
}

func (b *tokenBucket) refill(now time.Duration) {
	if b.rate == 0 || now <= b.last {
		return
	}
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// eta returns how long until n tokens are available (0 = now). A
// request larger than the bucket capacity is admitted once the bucket
// is full; take then drives the balance negative, which delays the
// following requests enough to keep the long-run rate honest.
func (b *tokenBucket) eta(n float64, now time.Duration) time.Duration {
	if b.rate == 0 {
		return 0
	}
	if n > b.burst {
		n = b.burst
	}
	b.refill(now)
	if b.tokens >= n {
		return 0
	}
	d := time.Duration((n - b.tokens) / b.rate * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

func (b *tokenBucket) take(n float64, now time.Duration) {
	if b.rate == 0 {
		return
	}
	b.refill(now)
	b.tokens -= n // may go negative for over-burst requests; see eta
}

// tenant is the engine-side state of one tenant: its FIFO queue, DRR
// deficit, token buckets, and metric handles. All mutable fields are
// guarded by the engine mutex.
type tenant struct {
	cfg     TenantConfig
	q       []*request
	deficit int64
	bytesTB tokenBucket
	iopsTB  tokenBucket

	accepted       *obs.Counter
	shed           *obs.Counter
	completedOps   *obs.Counter
	completedBytes *obs.Counter
	errored        *obs.Counter
	lat            *stats.Histogram // submit -> completion (queue + service)
	queueDelay     *stats.Histogram // submit -> array issue

	// perArray attributes completions to the hosting array. Not a
	// metric: incident forensics reads it to rank suspect arrays.
	perArray map[string]*arrayAgg
}

// arrayAgg accumulates one tenant's completions against one hosted
// array — the raw material for incident attribution.
type arrayAgg struct {
	ops    int64
	errs   int64
	latSum time.Duration
}

// tokenETA returns how long until the tenant's buckets admit r.
func (t *tenant) tokenETA(r *request, now time.Duration) time.Duration {
	w := t.bytesTB.eta(float64(r.sectors), now)
	if iw := t.iopsTB.eta(1, now); iw > w {
		w = iw
	}
	return w
}

func (t *tenant) takeTokens(r *request, now time.Duration) {
	t.bytesTB.take(float64(r.sectors), now)
	t.iopsTB.take(1, now)
}

// TenantStats is a snapshot of one tenant's lifetime counters.
type TenantStats struct {
	ID             string
	Weight         int
	Accepted       int64
	Shed           int64
	CompletedOps   int64
	CompletedBytes int64
	Errored        int64
	Latency        *stats.Histogram // snapshot
	QueueDelay     *stats.Histogram // snapshot
}

// JainIndex computes Jain's fairness index over per-tenant allocations:
// (Σx)² / (n·Σx²), 1.0 for a perfectly even split, 1/n when one tenant
// gets everything. Zero-length input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
