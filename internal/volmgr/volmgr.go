// Package volmgr is the multi-tenant serving front end: it hosts many
// RAIZN arrays behind a volume abstraction and decouples thousands of
// concurrent client goroutines from the ticket-ordered write path.
//
// Three layers, top to bottom:
//
//   - Volume manager: named logical volumes whose zone-granular LBA space
//     is sharded across the hosted arrays with a deterministic extent map
//     (extent i of a volume lands on the array the manager's round-robin
//     cursor pointed at when the volume was created; each extent is one
//     logical zone of its array). A volume inherits zoned semantics —
//     per-zone sequential writes — so the mapping stays pure arithmetic.
//   - Async request engine: per-volume bounded submission queues (one
//     FIFO per tenant), a single dispatcher goroutine that dequeues in
//     batches, coalesces physically contiguous writes into one array
//     command, and issues against the arrays under a bounded in-flight
//     window; completions resolve per-request futures on the virtual
//     clock and feed per-tenant latency accounting.
//   - Per-tenant QoS: deficit-round-robin weighted fair scheduling at
//     dequeue, token-bucket throughput/IOPS limits, and admission
//     control that sheds load with a typed ErrThrottled once a tenant's
//     queue is full instead of queueing without bound.
//
// Everything runs on the simulation's virtual clock; the package has no
// real-time dependencies.
package volmgr

import (
	"errors"
	"fmt"
	"sync"

	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// Errors returned by the manager and the engine. ThrottledError wraps
// ErrThrottled so callers can errors.Is against the sentinel or
// errors.As for the tenant detail.
var (
	ErrThrottled      = errors.New("volmgr: throttled")
	ErrClosed         = errors.New("volmgr: volume closed")
	ErrUnknownTenant  = errors.New("volmgr: unknown tenant")
	ErrNoSpace        = errors.New("volmgr: not enough free zones across arrays")
	ErrExists         = errors.New("volmgr: volume already exists")
	ErrExtentBoundary = errors.New("volmgr: request crosses an extent boundary")
	ErrUnaligned      = errors.New("volmgr: IO not sector aligned")
	ErrOutOfRange     = errors.New("volmgr: address out of range")
)

// ThrottledError is the typed admission-control rejection: the tenant's
// submission queue was full (or the tenant exceeded a hard limit), so
// the request was shed instead of queued.
type ThrottledError struct {
	Volume string
	Tenant string
	Reason string
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("volmgr: %s/%s throttled: %s", e.Volume, e.Tenant, e.Reason)
}

// Unwrap lets errors.Is(err, ErrThrottled) match.
func (e *ThrottledError) Unwrap() error { return ErrThrottled }

// Array is one hosted RAIZN array plus its zone allocator. Zones are
// handed to volumes in index order; the allocator never reuses a zone
// (volumes are long-lived in this model — reclamation is out of scope).
type Array struct {
	id  string
	vol *raizn.Volume

	mu       sync.Mutex
	nextZone int
}

// ID returns the array's label (also its metrics label when the caller
// created the raizn volume with Config.MetricsLabel).
func (a *Array) ID() string { return a.id }

// Volume returns the underlying RAIZN volume.
func (a *Array) Volume() *raizn.Volume { return a.vol }

// FreeZones returns how many unallocated logical zones remain.
func (a *Array) FreeZones() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.vol.NumZones() - a.nextZone
}

// allocZone claims the next free logical zone, or -1 when exhausted.
func (a *Array) allocZone() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.nextZone >= a.vol.NumZones() {
		return -1
	}
	z := a.nextZone
	a.nextZone++
	return z
}

// Config holds manager-wide parameters.
type Config struct {
	// Registry receives the manager's and every volume's metrics. Nil
	// creates a private registry.
	Registry *obs.Registry
}

// Manager hosts arrays and serves volumes.
type Manager struct {
	clk *vclock.Clock
	reg *obs.Registry

	mu        sync.Mutex
	arrays    []*Array
	cursor    int // round-robin extent-placement cursor
	vols      map[string]*Volume
	volOrder  []string
	recorders map[string]*flight.Recorder // per-array flight recorders
}

// NewManager returns an empty manager bound to the clock.
func NewManager(clk *vclock.Clock, cfg Config) *Manager {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Manager{
		clk:  clk,
		reg:  reg,
		vols: make(map[string]*Volume),
	}
}

// Metrics returns the manager's registry.
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// AddArray hosts a RAIZN array under the given id. Every hosted array
// must share the geometry of the first (same sector size and logical
// zone capacity), or the arithmetic extent map breaks.
func (m *Manager) AddArray(id string, v *raizn.Volume) (*Array, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range m.arrays {
		if a.id == id {
			return nil, fmt.Errorf("volmgr: array %q already hosted", id)
		}
	}
	if len(m.arrays) > 0 {
		ref := m.arrays[0].vol
		if v.SectorSize() != ref.SectorSize() || v.ZoneSectors() != ref.ZoneSectors() {
			return nil, errors.New("volmgr: array geometry mismatch")
		}
	}
	a := &Array{id: id, vol: v}
	m.arrays = append(m.arrays, a)
	return a, nil
}

// Arrays returns the hosted arrays in registration order.
func (m *Manager) Arrays() []*Array {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Array(nil), m.arrays...)
}

// extent maps one volume zone to one logical zone of one array.
type extent struct {
	arr  *Array
	zone int
}

// ExtentDesc describes one extent-map entry for inspection tools.
type ExtentDesc struct {
	Index int    // volume zone index
	Array string // hosting array id
	Zone  int    // logical zone on that array
}

// VolumeSpec parameterizes CreateVolume.
type VolumeSpec struct {
	// Zones is the volume's logical zone count (capacity = Zones × the
	// arrays' zone size). Must be >= 1.
	Zones int
	// Engine tunes the volume's submission engine.
	Engine EngineConfig
	// Tenants pre-registers the tenant population; more can be added
	// later with Volume.AddTenant.
	Tenants []TenantConfig
}

// CreateVolume creates a named logical volume of spec.Zones zones,
// sharding its zone list across the hosted arrays: each extent is
// placed on the array under the manager's round-robin cursor (skipping
// exhausted arrays), and claims that array's next free zone. The
// placement is a pure function of array registration order and volume
// creation order, so the extent map is reproducible run to run.
func (m *Manager) CreateVolume(name string, spec VolumeSpec) (*Volume, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.arrays) == 0 {
		return nil, errors.New("volmgr: no arrays hosted")
	}
	if spec.Zones < 1 {
		return nil, errors.New("volmgr: volume needs at least one zone")
	}
	if _, ok := m.vols[name]; ok {
		return nil, ErrExists
	}
	free := 0
	for _, a := range m.arrays {
		free += a.vol.NumZones() - a.nextZone
	}
	if spec.Zones > free {
		return nil, ErrNoSpace
	}
	extents := make([]extent, 0, spec.Zones)
	for len(extents) < spec.Zones {
		a := m.arrays[m.cursor%len(m.arrays)]
		m.cursor++
		z := a.allocZone()
		if z < 0 {
			continue // exhausted array; cursor already advanced past it
		}
		extents = append(extents, extent{arr: a, zone: z})
	}
	ref := m.arrays[0].vol
	v := &Volume{
		name:        name,
		clk:         m.clk,
		reg:         m.reg,
		extents:     extents,
		zoneSectors: ref.ZoneSectors(),
		sectorSize:  ref.SectorSize(),
	}
	v.eng = newEngine(v, spec.Engine)
	for _, tc := range spec.Tenants {
		if err := v.eng.addTenant(tc); err != nil {
			return nil, err
		}
	}
	v.eng.start()
	m.vols[name] = v
	m.volOrder = append(m.volOrder, name)
	return v, nil
}

// AttachRecorder binds a flight recorder to a hosted array so that SLO
// breaches attributed to the array can freeze its black box. Passing a
// nil recorder detaches.
func (m *Manager) AttachRecorder(arrayID string, rec *flight.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recorders == nil {
		m.recorders = make(map[string]*flight.Recorder)
	}
	if rec == nil {
		delete(m.recorders, arrayID)
		return
	}
	m.recorders[arrayID] = rec
}

// CheckIncidents sweeps every volume's SLO alarm and converts breaches
// into incidents: each breaching tenant's most-implicated array (per
// TenantArrayAttribution) is looked up, and if that array has an
// attached flight recorder the recorder is frozen with an SLO-breach
// trigger carrying the tenant/array attribution. Breaches whose top
// array has no recorder are skipped. Volumes are visited in creation
// order and breaches arrive worst-first, so the incident list is
// deterministic; at most one incident is filed per array per sweep (a
// second breach implicating an already-frozen array adds no evidence —
// freeze is first-wins).
func (m *Manager) CheckIncidents() []*flight.Incident {
	var out []*flight.Incident
	for _, v := range m.Volumes() {
		for _, br := range v.Alarm().Check() {
			attr := v.TenantArrayAttribution(br.Tenant)
			if len(attr) == 0 {
				continue
			}
			arr := attr[0].Array
			m.mu.Lock()
			rec := m.recorders[arr]
			m.mu.Unlock()
			if rec == nil || rec.Frozen() {
				continue
			}
			out = append(out, rec.Incident(flight.Trigger{
				Kind: flight.TrigSLOBreach,
				TNs:  int64(m.clk.Now()),
				Detail: fmt.Sprintf("volume %s tenant %s p99 %v > bar %v over %d samples",
					v.Name(), br.Tenant, br.P99, br.Bar, br.Samples),
				Dev:    -1,
				Zone:   -1,
				Tenant: br.Tenant,
				Array:  arr,
			}))
		}
	}
	return out
}

// Volume looks up a volume by name.
func (m *Manager) Volume(name string) *Volume {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vols[name]
}

// Volumes returns the volumes in creation order.
func (m *Manager) Volumes() []*Volume {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Volume, 0, len(m.volOrder))
	for _, n := range m.volOrder {
		out = append(out, m.vols[n])
	}
	return out
}

// Close drains and closes every volume (in creation order), then
// flushes every hosted array. Must be called from a simulated goroutine
// before the simulation ends, or the volumes' dispatcher goroutines
// keep the clock alive.
func (m *Manager) Close() error {
	var first error
	for _, v := range m.Volumes() {
		if err := v.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, a := range m.Arrays() {
		if err := a.vol.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Volume is one named, multi-tenant logical volume. Its LBA space is
// the concatenation of its extents; like the arrays beneath it, writes
// within a zone must be sequential. All methods are safe for concurrent
// use by simulated goroutines.
type Volume struct {
	name        string
	clk         *vclock.Clock
	reg         *obs.Registry
	extents     []extent
	zoneSectors int64
	sectorSize  int
	eng         *engine
}

// Name returns the volume's name.
func (v *Volume) Name() string { return v.name }

// NumZones returns the volume's logical zone count.
func (v *Volume) NumZones() int { return len(v.extents) }

// ZoneSectors returns the zone capacity in sectors.
func (v *Volume) ZoneSectors() int64 { return v.zoneSectors }

// NumSectors returns the volume capacity in sectors.
func (v *Volume) NumSectors() int64 { return int64(len(v.extents)) * v.zoneSectors }

// SectorSize returns the logical block size in bytes.
func (v *Volume) SectorSize() int { return v.sectorSize }

// Alarm returns the volume's per-tenant SLO alarm.
func (v *Volume) Alarm() *obs.SLOAlarm { return v.eng.alarm }

// ExtentMap returns the volume's extent map in zone order.
func (v *Volume) ExtentMap() []ExtentDesc {
	out := make([]ExtentDesc, len(v.extents))
	for i, e := range v.extents {
		out[i] = ExtentDesc{Index: i, Array: e.arr.id, Zone: e.zone}
	}
	return out
}

// locate translates a volume LBA range to (extent, array LBA). The
// range must lie inside one extent.
func (v *Volume) locate(lba, sectors int64) (extent, int64, error) {
	if lba < 0 || lba+sectors > v.NumSectors() {
		return extent{}, 0, ErrOutOfRange
	}
	ei := lba / v.zoneSectors
	inner := lba % v.zoneSectors
	if inner+sectors > v.zoneSectors {
		return extent{}, 0, ErrExtentBoundary
	}
	e := v.extents[ei]
	return e, int64(e.zone)*v.zoneSectors + inner, nil
}

// TenantArrayAttribution ranks the hosted arrays by how implicated
// they are in the tenant's completions so far: errors first, then mean
// latency, then traffic volume. The order is deterministic run to run.
func (v *Volume) TenantArrayAttribution(tenant string) []ArrayAttribution {
	return v.eng.tenantArrayAttribution(tenant)
}

// AddTenant registers a tenant with the volume's engine.
func (v *Volume) AddTenant(cfg TenantConfig) error {
	return v.eng.addTenant(cfg)
}

// SubmitWrite queues a write of data at lba on behalf of tenant and
// returns a future that resolves when the data is on the devices. A
// full tenant queue sheds the request with a ThrottledError.
func (v *Volume) SubmitWrite(tenant string, lba int64, data []byte, flags zns.Flag) (*vclock.Future, error) {
	return v.eng.submit(tenant, opWrite, lba, data, flags)
}

// SubmitRead queues a read into buf from lba on behalf of tenant.
func (v *Volume) SubmitRead(tenant string, lba int64, buf []byte) (*vclock.Future, error) {
	return v.eng.submit(tenant, opRead, lba, buf, 0)
}

// Write is the blocking wrapper around SubmitWrite.
func (v *Volume) Write(tenant string, lba int64, data []byte, flags zns.Flag) error {
	fut, err := v.SubmitWrite(tenant, lba, data, flags)
	if err != nil {
		return err
	}
	return fut.Wait()
}

// Read is the blocking wrapper around SubmitRead.
func (v *Volume) Read(tenant string, lba int64, buf []byte) error {
	fut, err := v.SubmitRead(tenant, lba, buf)
	if err != nil {
		return err
	}
	return fut.Wait()
}

// FinishZone seals one volume zone: in-flight IO is drained, the
// backing array zone's partial tail stripe is sealed, and the zone
// transitions to Full, returning its open-zone slot to the array.
// Open zones are a scarce ZNS resource — an array holds a handful of
// slots — so a serving stack must finish a tenant shard's zone when
// the shard goes cold or the array's budget starves other volumes.
// Writes still queued for the zone fail with the array's zone-full
// error once they are issued.
func (v *Volume) FinishZone(zone int) error {
	if zone < 0 || zone >= len(v.extents) {
		return ErrOutOfRange
	}
	v.eng.drainInflight()
	e := v.extents[zone]
	return e.arr.vol.FinishZone(e.zone)
}

// Flush persists completed writes on every array this volume spans. It
// bypasses the engine queues: a flush orders against what has already
// been issued, which is exactly the engine's in-flight set, so it first
// drains in-flight IO for this volume.
func (v *Volume) Flush() error {
	v.eng.drainInflight()
	seen := make(map[*Array]bool)
	var futs []*vclock.Future
	for _, e := range v.extents {
		if seen[e.arr] {
			continue
		}
		seen[e.arr] = true
		futs = append(futs, e.arr.vol.SubmitFlush())
	}
	return vclock.WaitAll(futs...)
}

// Close drains the engine (accepted requests still complete) and stops
// the dispatcher. Further submissions fail with ErrClosed.
func (v *Volume) Close() error {
	v.eng.close()
	return nil
}
