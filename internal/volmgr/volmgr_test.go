package volmgr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"raizn/internal/obs"
	"raizn/internal/obs/flight"
	"raizn/internal/raizn"
	"raizn/internal/vclock"
	"raizn/internal/zns"
)

// testDevConfig mirrors the raizn package's small-device geometry: with
// 3 devices and the default stripe unit, each array exposes 5 logical
// zones of 256 sectors.
func testDevConfig() zns.Config {
	cfg := zns.DefaultConfig()
	cfg.NumZones = 8
	cfg.ZoneSize = 160
	cfg.ZoneCap = 128
	cfg.MaxOpenZones = 8
	cfg.MaxActiveZones = 10
	return cfg
}

func newTestArray(t *testing.T, clk *vclock.Clock, reg *obs.Registry, label string) *raizn.Volume {
	return newTestArrayCfg(t, clk, reg, label, testDevConfig())
}

func newTestArrayCfg(t *testing.T, clk *vclock.Clock, reg *obs.Registry, label string, dc zns.Config) *raizn.Volume {
	t.Helper()
	devs := make([]*zns.Device, 3)
	for i := range devs {
		devs[i] = zns.NewDevice(clk, dc)
	}
	cfg := raizn.DefaultConfig()
	cfg.Metrics = reg
	cfg.MetricsLabel = label
	v, err := raizn.Create(clk, devs, cfg)
	if err != nil {
		t.Fatalf("raizn.Create(%s): %v", label, err)
	}
	return v
}

// newTestManager hosts n arrays a0..a(n-1) under one registry.
func newTestManager(t *testing.T, clk *vclock.Clock, n int) *Manager {
	t.Helper()
	m := NewManager(clk, Config{})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("a%d", i)
		if _, err := m.AddArray(id, newTestArray(t, clk, m.Metrics(), id)); err != nil {
			t.Fatalf("AddArray(%s): %v", id, err)
		}
	}
	return m
}

func pattern(tenant string, lba int64, n int, ss int) []byte {
	out := make([]byte, n*ss)
	seed := byte(len(tenant))
	for _, c := range []byte(tenant) {
		seed ^= c
	}
	for i := 0; i < n; i++ {
		cur := lba + int64(i)
		for j := 0; j < ss; j++ {
			out[i*ss+j] = seed ^ byte(cur) ^ byte(j) ^ byte(cur>>8)
		}
	}
	return out
}

// TestExtentMapRoundRobin checks that volume zones stripe across arrays
// in registration order and that placement is reproducible.
func TestExtentMapRoundRobin(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 3)
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones:   6,
			Tenants: []TenantConfig{{ID: "t0"}},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		want := []ExtentDesc{
			{Index: 0, Array: "a0", Zone: 0},
			{Index: 1, Array: "a1", Zone: 0},
			{Index: 2, Array: "a2", Zone: 0},
			{Index: 3, Array: "a0", Zone: 1},
			{Index: 4, Array: "a1", Zone: 1},
			{Index: 5, Array: "a2", Zone: 1},
		}
		got := v.ExtentMap()
		if len(got) != len(want) {
			t.Fatalf("extent map has %d entries, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("extent %d = %+v, want %+v", i, got[i], want[i])
			}
		}
		// A second volume continues where the cursor left off.
		v2, err := m.CreateVolume("vol2", VolumeSpec{Zones: 2, Tenants: []TenantConfig{{ID: "t0"}}})
		if err != nil {
			t.Fatalf("CreateVolume(vol2): %v", err)
		}
		em := v2.ExtentMap()
		if em[0].Array != "a0" || em[0].Zone != 2 || em[1].Array != "a1" || em[1].Zone != 2 {
			t.Errorf("second volume extents = %+v, want a0/2, a1/2", em)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestWriteReadAcrossExtents writes every zone of a volume spanning two
// arrays and reads the data back through the engine.
func TestWriteReadAcrossExtents(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 2)
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones:   4,
			Tenants: []TenantConfig{{ID: "t0"}},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		zs := v.ZoneSectors()
		ss := v.SectorSize()
		const chunk = 16
		for z := 0; z < v.NumZones(); z++ {
			for off := int64(0); off < zs; off += chunk {
				lba := int64(z)*zs + off
				if err := v.Write("t0", lba, pattern("t0", lba, chunk, ss), 0); err != nil {
					t.Fatalf("Write z%d off%d: %v", z, off, err)
				}
			}
		}
		for z := 0; z < v.NumZones(); z++ {
			lba := int64(z) * zs
			buf := make([]byte, int(zs)*ss)
			if err := v.Read("t0", lba, buf); err != nil {
				t.Fatalf("Read z%d: %v", z, err)
			}
			want := pattern("t0", lba, int(zs), ss)
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("zone %d data mismatch at byte %d", z, i)
				}
			}
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestValidationErrors exercises the synchronous error paths.
func TestValidationErrors(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 1)
		if _, err := m.CreateVolume("vol", VolumeSpec{Zones: 100}); !errors.Is(err, ErrNoSpace) {
			t.Errorf("oversized volume: err = %v, want ErrNoSpace", err)
		}
		v, err := m.CreateVolume("vol", VolumeSpec{Zones: 2, Tenants: []TenantConfig{{ID: "t0"}}})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		if _, err := m.CreateVolume("vol", VolumeSpec{Zones: 1}); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate volume: err = %v, want ErrExists", err)
		}
		ss := v.SectorSize()
		zs := v.ZoneSectors()
		if _, err := v.SubmitWrite("t0", 0, make([]byte, ss-1), 0); !errors.Is(err, ErrUnaligned) {
			t.Errorf("unaligned write: err = %v, want ErrUnaligned", err)
		}
		if _, err := v.SubmitWrite("t0", v.NumSectors(), make([]byte, ss), 0); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("out-of-range write: err = %v, want ErrOutOfRange", err)
		}
		if _, err := v.SubmitWrite("t0", zs-1, make([]byte, 2*ss), 0); !errors.Is(err, ErrExtentBoundary) {
			t.Errorf("boundary-crossing write: err = %v, want ErrExtentBoundary", err)
		}
		if _, err := v.SubmitWrite("nobody", 0, make([]byte, ss), 0); !errors.Is(err, ErrUnknownTenant) {
			t.Errorf("unknown tenant: err = %v, want ErrUnknownTenant", err)
		}
		if err := v.AddTenant(TenantConfig{ID: "t0"}); err == nil {
			t.Errorf("duplicate tenant registration succeeded")
		}
		if err := v.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if _, err := v.SubmitWrite("t0", 0, make([]byte, ss), 0); !errors.Is(err, ErrClosed) {
			t.Errorf("write after close: err = %v, want ErrClosed", err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("manager Close: %v", err)
		}
	})
}

// TestAdmissionControlSheds fills a depth-bounded queue faster than the
// engine drains it and checks the overflow is shed with the typed
// error.
func TestAdmissionControlSheds(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 1)
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones:  1,
			Engine: EngineConfig{QueueDepth: 4, MaxInflight: 1, BatchSize: 1},
			Tenants: []TenantConfig{
				// A tight rate limit keeps the queue from draining under us.
				{ID: "t0", RateSectorsPerSec: 16, BurstSectors: 1},
			},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		ss := v.SectorSize()
		var futs []*vclock.Future
		var shed int
		var terr *ThrottledError
		for i := 0; i < 32; i++ {
			fut, err := v.SubmitWrite("t0", int64(i), pattern("t0", int64(i), 1, ss), 0)
			switch {
			case err == nil:
				futs = append(futs, fut)
			case errors.Is(err, ErrThrottled):
				shed++
				if !errors.As(err, &terr) {
					t.Fatalf("throttled error is not a *ThrottledError: %v", err)
				}
			default:
				t.Fatalf("SubmitWrite: %v", err)
			}
		}
		if shed == 0 {
			t.Fatalf("no request was shed despite queue depth 4 and 32 submissions")
		}
		if terr.Tenant != "t0" || terr.Volume != "vol" {
			t.Errorf("ThrottledError = %+v, want tenant t0 volume vol", terr)
		}
		if err := vclock.WaitAll(futs...); err != nil {
			t.Fatalf("accepted writes failed: %v", err)
		}
		st := v.TenantStats()[0]
		if st.Shed != int64(shed) || st.Accepted != int64(len(futs)) {
			t.Errorf("stats accepted=%d shed=%d, want %d/%d", st.Accepted, st.Shed, len(futs), shed)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestRateLimitStretchesTime checks the token bucket paces a tenant to
// its configured rate in virtual time.
func TestRateLimitStretchesTime(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 1)
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones: 1,
			Tenants: []TenantConfig{
				{ID: "t0", RateSectorsPerSec: 64, BurstSectors: 1},
			},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		ss := v.SectorSize()
		const total = 128 // sectors; at 64/s this takes ~2s of virtual time
		start := clk.Now()
		for lba := int64(0); lba < total; lba += 4 {
			if err := v.Write("t0", lba, pattern("t0", lba, 4, ss), 0); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		elapsed := clk.Now() - start
		if min := 1500 * time.Millisecond; elapsed < min {
			t.Errorf("128 sectors at 64/s finished in %v, want >= %v", elapsed, min)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestWeightedFairness backlogs two tenants with a 2:1 weight split on
// one array and checks completed bytes track the weights within 10%.
// The measurement window is the heavy tenant's steady-state middle —
// snapshots at 25% and 100% of its submissions — so start-up transients
// (one tenant's queue filling first) and tail drain don't skew it.
func TestWeightedFairness(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		// Bigger zones than the default test geometry: the steady-state
		// window needs a few hundred chunks to average over.
		dc := testDevConfig()
		dc.ZoneSize = 640
		dc.ZoneCap = 512
		m := NewManager(clk, Config{})
		if _, err := m.AddArray("a0", newTestArrayCfg(t, clk, m.Metrics(), "a0", dc)); err != nil {
			t.Fatalf("AddArray: %v", err)
		}
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones:  4,
			Engine: EngineConfig{QueueDepth: 32, MaxInflight: 4, BatchSize: 4, QuantumSectors: 16},
			Tenants: []TenantConfig{
				{ID: "heavy", Weight: 2},
				{ID: "light", Weight: 1},
			},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		ss := v.SectorSize()
		zs := v.ZoneSectors()
		const chunk = 16
		chunksPerTenant := int(2 * zs / chunk) // two zones each
		wg := clk.NewWaitGroup()
		var snapStart, snapEnd []TenantStats
		runTenant := func(id string, firstZone int64) {
			defer wg.Done()
			var futs []*vclock.Future
			for i := 0; i < chunksPerTenant; i++ {
				lba := (firstZone+int64(i)/(zs/chunk))*zs + int64(i)%(zs/chunk)*chunk
				fut, err := v.SubmitWrite(id, lba, pattern(id, lba, chunk, ss), 0)
				if errors.Is(err, ErrThrottled) {
					clk.Sleep(time.Millisecond)
					i--
					continue
				}
				if err != nil {
					t.Errorf("%s SubmitWrite: %v", id, err)
					return
				}
				futs = append(futs, fut)
				if len(futs) >= 16 {
					if err := futs[0].Wait(); err != nil {
						t.Errorf("%s write failed: %v", id, err)
						return
					}
					futs = futs[1:]
				}
				if id == "heavy" {
					switch i {
					case chunksPerTenant / 4:
						snapStart = v.TenantStats()
					case chunksPerTenant - 1:
						snapEnd = v.TenantStats()
					}
				}
			}
			if err := vclock.WaitAll(futs...); err != nil {
				t.Errorf("%s drain: %v", id, err)
			}
		}
		wg.Add(2)
		clk.Go(func() { runTenant("heavy", 0) })
		clk.Go(func() { runTenant("light", 2) })
		wg.Wait()

		delta := func(stats []TenantStats, id string) int64 {
			for _, st := range stats {
				if st.ID == id {
					return st.CompletedBytes
				}
			}
			return 0
		}
		heavy := delta(snapEnd, "heavy") - delta(snapStart, "heavy")
		light := delta(snapEnd, "light") - delta(snapStart, "light")
		if light == 0 {
			t.Fatalf("light tenant completed nothing in the window (heavy=%d)", heavy)
		}
		ratio := float64(heavy) / float64(light)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("2:1 weights produced byte ratio %.3f (heavy=%d light=%d), want within 10%% of 2",
				ratio, heavy, light)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestCoalescing checks contiguous same-tenant writes merge into fewer
// array commands and the data still reads back intact.
func TestCoalescing(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 1)
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones:   1,
			Engine:  EngineConfig{BatchSize: 8, MaxInflight: 8},
			Tenants: []TenantConfig{{ID: "t0"}},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		ss := v.SectorSize()
		var futs []*vclock.Future
		const n = 32
		for i := int64(0); i < n; i++ {
			fut, err := v.SubmitWrite("t0", i*4, pattern("t0", i*4, 4, ss), 0)
			if err != nil {
				t.Fatalf("SubmitWrite %d: %v", i, err)
			}
			futs = append(futs, fut)
		}
		if err := vclock.WaitAll(futs...); err != nil {
			t.Fatalf("writes failed: %v", err)
		}
		co := m.Metrics().Counter(obs.LabeledName("volmgr_coalesced_requests_total", "volume", "vol")).Load()
		if co == 0 {
			t.Errorf("no coalescing happened across %d contiguous queued writes", n)
		}
		buf := make([]byte, n*4*ss)
		if err := v.Read("t0", 0, buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		want := pattern("t0", 0, n*4, ss)
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("data mismatch at byte %d after coalesced writes", i)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestManyTenantsConcurrent drives many tenant goroutines with
// pipelined async submissions through one volume spanning several
// arrays — the test the race detector cares about.
func TestManyTenantsConcurrent(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 4)
		const tenants = 16
		var tcs []TenantConfig
		for i := 0; i < tenants; i++ {
			tcs = append(tcs, TenantConfig{ID: fmt.Sprintf("t%02d", i)})
		}
		v, err := m.CreateVolume("vol", VolumeSpec{
			Zones:   tenants,
			Engine:  EngineConfig{QueueDepth: 16, MaxInflight: 32, BatchSize: 8},
			Tenants: tcs,
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		ss := v.SectorSize()
		zs := v.ZoneSectors()
		const chunk = 8
		wg := clk.NewWaitGroup()
		wg.Add(tenants)
		for i := 0; i < tenants; i++ {
			i := i
			clk.Go(func() {
				defer wg.Done()
				id := fmt.Sprintf("t%02d", i)
				base := int64(i) * zs
				var futs []*vclock.Future
				for off := int64(0); off+chunk <= zs; off += chunk {
					lba := base + off
					fut, err := v.SubmitWrite(id, lba, pattern(id, lba, chunk, ss), 0)
					if errors.Is(err, ErrThrottled) {
						clk.Sleep(100 * time.Microsecond)
						off -= chunk
						continue
					}
					if err != nil {
						t.Errorf("%s SubmitWrite: %v", id, err)
						return
					}
					futs = append(futs, fut)
					if len(futs) >= 8 {
						if err := futs[0].Wait(); err != nil {
							t.Errorf("%s write: %v", id, err)
							return
						}
						futs = futs[1:]
					}
				}
				if err := vclock.WaitAll(futs...); err != nil {
					t.Errorf("%s drain: %v", id, err)
					return
				}
				// Read the whole zone back and verify.
				buf := make([]byte, int(zs)*ss)
				if err := v.Read(id, base, buf); err != nil {
					t.Errorf("%s Read: %v", id, err)
					return
				}
				want := pattern(id, base, int(zs), ss)
				for j := range want {
					if buf[j] != want[j] {
						t.Errorf("%s data mismatch at byte %d", id, j)
						return
					}
				}
			})
		}
		wg.Wait()
		if err := m.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Every tenant's accounting adds up.
		for _, st := range v.TenantStats() {
			wantBytes := zs * int64(ss) // zone write + zone read... writes only counted
			if st.Errored != 0 {
				t.Errorf("%s: %d errored requests", st.ID, st.Errored)
			}
			if st.CompletedBytes < wantBytes {
				t.Errorf("%s: completed %d bytes, want >= %d", st.ID, st.CompletedBytes, wantBytes)
			}
		}
	})
}

// TestJainIndex sanity-checks the fairness helper.
func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); got < 0.999 {
		t.Errorf("equal split: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); got > 0.2500001 || got < 0.2499999 {
		t.Errorf("single winner of 4: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v, want 0", got)
	}
}

// TestTenantArrayAttribution: completions are attributed to the hosting
// array per tenant, and the ranking orders errors, then mean latency,
// then volume, deterministically.
func TestTenantArrayAttribution(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 2)
		v, err := m.CreateVolume("attr", VolumeSpec{
			Zones:   4, // round-robins across a0, a1
			Engine:  EngineConfig{QueueDepth: 4},
			Tenants: []TenantConfig{{ID: "t0", Weight: 1}},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		zs := v.ZoneSectors()
		// Zone 0 lives on a0, zone 1 on a1: write both so t0 has
		// completions attributed to both arrays.
		for z := int64(0); z < 2; z++ {
			fut, err := v.SubmitWrite("t0", z*zs, pattern("t0", z*zs, 16, v.SectorSize()), 0)
			if err != nil {
				t.Fatalf("SubmitWrite zone %d: %v", z, err)
			}
			if err := fut.Wait(); err != nil {
				t.Fatalf("write zone %d: %v", z, err)
			}
		}
		attr := v.TenantArrayAttribution("t0")
		if len(attr) != 2 {
			t.Fatalf("attribution has %d arrays, want 2: %+v", len(attr), attr)
		}
		var ops int64
		for _, a := range attr {
			if a.Array != "a0" && a.Array != "a1" {
				t.Errorf("attributed to unknown array %q", a.Array)
			}
			if a.Errors != 0 {
				t.Errorf("%s: %d errors on a clean run", a.Array, a.Errors)
			}
			if a.MeanLat <= 0 {
				t.Errorf("%s: non-positive mean latency %v", a.Array, a.MeanLat)
			}
			ops += a.Ops
		}
		if ops != 2 {
			t.Errorf("attributed %d ops, want 2", ops)
		}
		if v.TenantArrayAttribution("nope") != nil {
			t.Error("unknown tenant should attribute to nothing")
		}
		if err := v.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// TestCheckIncidentsFreezesAttributedArray: an SLO breach files one
// incident against the breaching tenant's most-implicated array, carries
// the tenant/array attribution in the trigger, and freezes that array's
// recorder exactly once.
func TestCheckIncidentsFreezesAttributedArray(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		m := newTestManager(t, clk, 1)
		v, err := m.CreateVolume("slo", VolumeSpec{
			Zones: 2,
			Engine: EngineConfig{
				QueueDepth: 4,
				// An absurdly tight absolute objective: every write breaches.
				SLO: obs.SLOConfig{Factor: 1, TargetP99: time.Nanosecond, MinSamples: 4},
			},
			Tenants: []TenantConfig{{ID: "t0", Weight: 1}},
		})
		if err != nil {
			t.Fatalf("CreateVolume: %v", err)
		}
		rec := flight.New(flight.Config{Clock: clk, Registry: m.Metrics(), Label: "a0"})
		m.AttachRecorder("a0", rec)

		zs := v.ZoneSectors()
		for i := int64(0); i < 8; i++ {
			fut, err := v.SubmitWrite("t0", i*16%zs+i/(zs/16)*zs, pattern("t0", 0, 16, v.SectorSize()), 0)
			if err != nil {
				t.Fatalf("SubmitWrite: %v", err)
			}
			if err := fut.Wait(); err != nil {
				t.Fatalf("write: %v", err)
			}
		}

		incidents := m.CheckIncidents()
		if len(incidents) != 1 {
			t.Fatalf("CheckIncidents filed %d incidents, want 1: %+v", len(incidents), incidents)
		}
		trig := incidents[0].Box.Trigger
		if trig == nil || trig.Kind != flight.TrigSLOBreach {
			t.Fatalf("trigger = %+v, want an SLO-breach trigger", trig)
		}
		if trig.Tenant != "t0" || trig.Array != "a0" {
			t.Errorf("trigger attribution = tenant %q array %q, want t0/a0", trig.Tenant, trig.Array)
		}
		if !rec.Frozen() {
			t.Error("the attributed array's recorder was not frozen")
		}
		// A second sweep must not refile against the frozen recorder.
		if again := m.CheckIncidents(); len(again) != 0 {
			t.Errorf("second sweep filed %d incidents against a frozen recorder", len(again))
		}
		if err := v.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}
