package zns

import (
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// This file is the device side of the submission/completion ring
// (internal/ring): a caller hands the device a whole batch of typed
// commands at once. The batch is validated and applied under ONE device
// lock acquisition, completion futures come from ONE slab allocation,
// and all completions are delivered by ONE walker goroutine instead of
// one timer goroutine per command — the per-command fixed costs the ring
// amortizes. Per-command simulated timing (pipe occupancy, latencies) is
// identical to the equivalent sequence of individual submissions, which
// is what lets ring and direct paths be compared differentially.

// CmdOp is the submission-queue entry type.
type CmdOp uint8

const (
	CmdWrite  CmdOp = iota // sequential write of Data at Sector
	CmdWritev              // gathered write of Segs at Sector
	CmdRead                // read into Data from Sector
	CmdReadZC              // zero-copy read of NSectors at Sector (Data is output)
	CmdAppend              // zone append of Data to Zone (Sector is output)
	CmdFlush               // flush the volatile write cache
	CmdReset               // reset Zone
	CmdFinish              // finish Zone
)

// Cmd is one submission-queue entry. Input fields depend on Op (see the
// CmdOp constants); PrepareBatch fills the output fields:
//
//   - Fut: the completion future (pre-completed when Err is set).
//   - Err: the submit-time error, if the command was rejected. A
//     CmdReadZC that cannot be served zero-copy reports ErrZCUnavailable
//     here; the caller falls back to a copying read.
//   - Done: the absolute virtual completion time (SQ-to-CQ latency is
//     Done minus the submit instant).
//   - Sector (CmdAppend): the device-assigned write position.
//   - Data, Seq (CmdReadZC): the device-owned payload view and the zone
//     zc-sequence that pins it (see ReadZCSpan).
type Cmd struct {
	Op       CmdOp
	Sector   int64
	Zone     int
	NSectors int64 // CmdReadZC only: view length
	Data     []byte
	Segs     [][]byte
	Flags    Flag
	Span     *obs.Span

	Fut  *vclock.Future
	Err  error
	Done time.Duration
	Seq  uint64
}

// Completion is one batched command's pending completion, produced by
// PrepareBatch and delivered by RunCompletions. The fields are opaque to
// callers; completions from several devices may be merged into one
// RunCompletions call (one walker goroutine reaps the whole CQ).
type Completion struct {
	dev   *Device
	sp    *obs.Span
	fut   *vclock.Future
	epoch uint64
	pio   pendingIO
}

// At returns the completion's absolute virtual delivery time.
func (c *Completion) At() time.Duration { return c.pio.at }

// PrepareBatch validates and applies every command in cmds under a
// single device-lock acquisition, appends their pending completions to
// comps and returns it. State (write pointers, payloads, snapshots) is
// applied at submit exactly as in the individual command methods; crash-
// point hooks fire per command, after the whole batch is applied, plus
// one "zns.ring.drain" crossing carrying the accepted-command count.
//
// The caller must deliver the returned completions with RunCompletions
// (they complete rejected commands' futures itself). Commands' simulated
// completion times are unchanged from individual submission; only the
// host-side fixed costs are amortized.
func (d *Device) PrepareBatch(cmds []Cmd, comps []Completion) []Completion {
	if len(cmds) == 0 {
		return comps
	}
	slab := d.clk.NewFutureSlab(len(cmds))
	var hooks []func()
	accepted := 0

	d.mu.Lock()
	epoch := d.epoch
	for i := range cmds {
		c := &cmds[i]
		c.Fut = &slab[i]
		var pio pendingIO
		var err error
		var hook string
		hookZone, hookArg := -1, int64(0)
		ss := d.cfg.SectorSize

		switch c.Op {
		case CmdWrite:
			if len(c.Data) == 0 || len(c.Data)%ss != 0 {
				err = ErrUnaligned
				break
			}
			n := int64(len(c.Data) / ss)
			pio, err = d.writeApplyLocked(c.Span, c.Sector, n, c.Data, nil, c.Flags)
			hook, hookZone, hookArg = "zns.cmd.write", d.ZoneOf(c.Sector), c.Sector
		case CmdWritev:
			if len(c.Segs) == 0 {
				err = ErrUnaligned
				break
			}
			if len(c.Segs) == 1 {
				// Mirror WritevSpan's single-segment devolution to Write.
				if len(c.Segs[0]) == 0 || len(c.Segs[0])%ss != 0 {
					err = ErrUnaligned
					break
				}
				n := int64(len(c.Segs[0]) / ss)
				pio, err = d.writeApplyLocked(c.Span, c.Sector, n, c.Segs[0], nil, c.Flags)
				hook, hookZone, hookArg = "zns.cmd.write", d.ZoneOf(c.Sector), c.Sector
				break
			}
			var n int64
			for _, s := range c.Segs {
				if len(s) == 0 || len(s)%ss != 0 {
					err = ErrUnaligned
					break
				}
				n += int64(len(s) / ss)
			}
			if err != nil {
				break
			}
			pio, err = d.writeApplyLocked(c.Span, c.Sector, n, nil, c.Segs, c.Flags)
			hook, hookZone, hookArg = "zns.cmd.write", d.ZoneOf(c.Sector), c.Sector
		case CmdAppend:
			if len(c.Data) == 0 || len(c.Data)%ss != 0 {
				err = ErrUnaligned
				break
			}
			if c.Zone < 0 || c.Zone >= d.cfg.NumZones {
				err = ErrOutOfRange
				break
			}
			n := int64(len(c.Data) / ss)
			sector := d.ZoneStart(c.Zone) + d.zones[c.Zone].wp
			pio, err = d.writeApplyLocked(c.Span, sector, n, c.Data, nil, c.Flags)
			if err == nil {
				c.Sector = sector
			}
			hook, hookZone, hookArg = "zns.cmd.append", c.Zone, sector
		case CmdRead:
			if len(c.Data) == 0 || len(c.Data)%ss != 0 {
				err = ErrUnaligned
				break
			}
			n := int64(len(c.Data) / ss)
			pio, err = d.readApplyLocked(c.Span, c.Sector, n, c.Data)
		case CmdReadZC:
			var data []byte
			var z int
			var seq uint64
			data, z, seq, pio, err = d.readZCApplyLocked(c.Span, c.Sector, c.NSectors)
			if err == nil {
				c.Data, c.Zone, c.Seq = data, z, seq
			}
		case CmdFlush:
			pio, err = d.flushApplyLocked(c.Span)
			hook, hookZone, hookArg = "zns.cmd.flush", -1, d.flushCount
		case CmdReset:
			pio, hookArg, err = d.resetApplyLocked(c.Span, c.Zone)
			hook, hookZone = "zns.zone.reset", c.Zone
		case CmdFinish:
			pio, hookArg, err = d.finishApplyLocked(c.Span, c.Zone)
			hook, hookZone = "zns.zone.finish", c.Zone
		default:
			err = ErrOutOfRange
		}

		if err != nil {
			c.Err = err
			continue
		}
		accepted++
		c.Done = pio.at
		if hook != "" {
			if hf := d.hookLocked(hook, hookZone, hookArg); hf != nil {
				hooks = append(hooks, hf)
			}
		}
		comps = append(comps, Completion{dev: d, sp: c.Span, fut: c.Fut, epoch: epoch, pio: pio})
	}
	var drain func()
	if accepted > 0 {
		drain = d.hookLocked("zns.ring.drain", -1, int64(accepted))
	}
	d.mu.Unlock()

	// Rejected commands complete synchronously, like the individual
	// methods' failSpan path.
	for i := range cmds {
		if c := &cmds[i]; c.Err != nil {
			c.Span.End(c.Err)
			c.Fut.Complete(c.Err)
		}
	}
	for _, hf := range hooks {
		fire(hf)
	}
	fire(drain)
	return comps
}

// RunCompletions delivers a batch of prepared completions: one walker
// goroutine sleeps to each completion's virtual finish time (in time
// order), applies its persistence effects under the owning device's lock
// — unless that device lost power since submit, in which case the
// command completes with ErrPowerLoss and the effect is discarded — and
// completes its future, exactly mirroring per-command scheduling.
// onDone, if non-nil, runs on the walker after the last completion (for
// returning pooled storage).
func RunCompletions(clk *vclock.Clock, comps []Completion, onDone func()) {
	if len(comps) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	// Stable insertion sort by completion time: batches are small and
	// nearly sorted (each pipe hands out monotone times), and equal-time
	// completions must stay in submission order, matching the FIFO
	// tie-break of individually scheduled timer events.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].pio.at < comps[j-1].pio.at; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	clk.Go(func() {
		for i := range comps {
			c := &comps[i]
			if wait := c.pio.at - clk.Now(); wait > 0 {
				clk.Sleep(wait)
			}
			d := c.dev
			d.mu.Lock()
			stale := d.epoch != c.epoch
			if !stale {
				d.applyEffectLocked(&c.pio)
			}
			d.mu.Unlock()
			err := c.pio.err
			if stale {
				err = ErrPowerLoss
			}
			c.sp.EndAt(c.pio.at, err)
			c.fut.Complete(err)
		}
		if onDone != nil {
			onDone()
		}
	})
}

// SubmitBatch prepares and delivers a batch on this device alone; see
// PrepareBatch and RunCompletions for the split callers use to reap
// several devices' batches with one walker.
func (d *Device) SubmitBatch(cmds []Cmd) {
	RunCompletions(d.clk, d.PrepareBatch(cmds, nil), nil)
}
