package zns

import (
	"bytes"
	"testing"
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// await waits for every command's future and returns the first error.
func awaitBatch(cmds []Cmd) error {
	var first error
	for i := range cmds {
		if err := cmds[i].Fut.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// devSnapshot captures the externally observable device state: zone
// descriptors, payload contents up to each write pointer, and the
// cumulative counters. Two devices that ran equivalent workloads must
// snapshot identically.
type devSnapshot struct {
	zones  []ZoneDesc
	data   [][]byte
	wb, rb int64
	fl, rs int64
	now    time.Duration
}

func snapshotDev(d *Device) devSnapshot {
	s := devSnapshot{zones: d.ReportZones(), now: d.Clock().Now()}
	s.wb, s.rb, s.fl, s.rs = d.Counters()
	for _, z := range s.zones {
		n := int(z.WP - d.ZoneStart(z.Index))
		if n <= 0 {
			s.data = append(s.data, nil)
			continue
		}
		buf := make([]byte, n*d.Config().SectorSize)
		if err := d.Read(d.ZoneStart(z.Index), buf).Wait(); err != nil {
			// Beyond-WP or discarded payloads read as an error marker.
			buf = []byte{0xFF}
		}
		s.data = append(s.data, buf)
	}
	return s
}

func compareDevSnapshots(t *testing.T, batched, direct devSnapshot) {
	t.Helper()
	if batched.now != direct.now {
		t.Errorf("virtual time diverged: batched %v, direct %v", batched.now, direct.now)
	}
	if batched.wb != direct.wb || batched.rb != direct.rb || batched.fl != direct.fl || batched.rs != direct.rs {
		t.Errorf("counters diverged: batched %d/%d/%d/%d, direct %d/%d/%d/%d",
			batched.wb, batched.rb, batched.fl, batched.rs, direct.wb, direct.rb, direct.fl, direct.rs)
	}
	for i := range batched.zones {
		if batched.zones[i] != direct.zones[i] {
			t.Errorf("zone %d diverged: batched %+v, direct %+v", i, batched.zones[i], direct.zones[i])
		}
		if !bytes.Equal(batched.data[i], direct.data[i]) {
			t.Errorf("zone %d payload diverged", i)
		}
	}
}

// TestBatchEquivalence submits one batch covering every command type and
// checks the device ends in exactly the state an equivalent sequence of
// individual submissions produces: same zone states, same payloads, same
// counters, same virtual completion time. This is the contract that lets
// the ring and direct paths be compared differentially at higher layers.
func TestBatchEquivalence(t *testing.T) {
	cfg := testConfig()

	w0 := pattern(cfg, 4, 0x11)
	w1a, w1b := pattern(cfg, 2, 0x22), pattern(cfg, 3, 0x33)
	ap := pattern(cfg, 2, 0x44)

	// Batched run.
	bc := vclock.New()
	bd := NewDevice(bc, cfg)
	var batched devSnapshot
	bc.Run(func() {
		// Seed zone 3 so the batch can reset something non-empty.
		mustWrite(t, bd, bd.ZoneStart(3), pattern(cfg, 2, 0x55), 0)
		rbuf := make([]byte, 4*cfg.SectorSize)
		cmds := []Cmd{
			{Op: CmdWrite, Sector: 0, Data: w0},
			{Op: CmdWritev, Sector: 4, Segs: [][]byte{w1a, w1b}},
			{Op: CmdAppend, Zone: 1, Data: ap},
			{Op: CmdFlush},
			{Op: CmdRead, Sector: 0, Data: rbuf},
			{Op: CmdReset, Zone: 3},
			{Op: CmdFinish, Zone: 2},
		}
		bd.SubmitBatch(cmds)
		if err := awaitBatch(cmds); err != nil {
			t.Fatalf("batch: %v", err)
		}
		if got := cmds[2].Sector; got != bd.ZoneStart(1) {
			t.Errorf("append sector = %d, want zone-1 start %d", got, bd.ZoneStart(1))
		}
		want := append(append([]byte(nil), w0...), append(w1a, w1b...)...)[:len(rbuf)]
		if !bytes.Equal(rbuf, want) {
			t.Error("batched read returned wrong payload")
		}
		batched = snapshotDev(bd)
	})

	// Direct run: same commands, one at a time, issued concurrently the
	// way the batch issues them (all at the same virtual instant).
	dc := vclock.New()
	dd := NewDevice(dc, cfg)
	var direct devSnapshot
	dc.Run(func() {
		mustWrite(t, dd, dd.ZoneStart(3), pattern(cfg, 2, 0x55), 0)
		rbuf := make([]byte, 4*cfg.SectorSize)
		futs := []*vclock.Future{
			dd.Write(0, w0, 0),
			dd.Writev(4, [][]byte{w1a, w1b}, 0),
		}
		sec, fut := dd.Append(1, ap, 0)
		futs = append(futs, fut, dd.Flush(), dd.Read(0, rbuf), dd.ResetZone(3), dd.FinishZone(2))
		for _, f := range futs {
			if err := f.Wait(); err != nil {
				t.Fatalf("direct: %v", err)
			}
		}
		if sec != dd.ZoneStart(1) {
			t.Errorf("direct append sector = %d, want %d", sec, dd.ZoneStart(1))
		}
		direct = snapshotDev(dd)
	})

	compareDevSnapshots(t, batched, direct)
}

// TestBatchRejection checks the submit-time error contract: a rejected
// command carries Err and a pre-completed future, the accepted commands
// in the same batch still apply, and the drain hook's Arg reports only
// the accepted count.
func TestBatchRejection(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		var drains []int64
		d.AttachHook(func(p obs.HookPoint) {
			if p.Name == "zns.ring.drain" {
				drains = append(drains, p.Arg)
			}
		}, 0)

		good := pattern(cfg, 2, 0x66)
		cmds := []Cmd{
			{Op: CmdWrite, Sector: 0, Data: good},
			{Op: CmdWrite, Sector: 0, Data: good[:cfg.SectorSize-1]}, // unaligned
			{Op: CmdWrite, Sector: d.NumSectors() + 64, Data: good},  // out of range
			{Op: CmdWrite, Sector: d.ZoneStart(1) + 7, Data: good},   // gap: not sequential
			{Op: CmdAppend, Zone: cfg.NumZones + 3, Data: good},      // bad zone
			{Op: CmdWrite, Sector: 2, Data: pattern(cfg, 1, 0x77)},   // accepted, continues zone 0
			{Op: CmdReadZC, Sector: d.ZoneStart(2), NSectors: 1},     // beyond WP of an empty zone
		}
		d.SubmitBatch(cmds)

		wantErr := []error{nil, ErrUnaligned, ErrOutOfRange, ErrNotSequential, ErrOutOfRange, nil, ErrReadBeyondWP}
		for i, want := range wantErr {
			if cmds[i].Err != want {
				t.Errorf("cmd %d: Err = %v, want %v", i, cmds[i].Err, want)
			}
			// Every command, rejected or not, must expose a waitable
			// future reporting the same outcome.
			if got := cmds[i].Fut.Wait(); got != want {
				t.Errorf("cmd %d: Fut.Wait() = %v, want %v", i, got, want)
			}
		}
		if len(drains) != 1 || drains[0] != 2 {
			t.Errorf("drain hook args = %v, want one crossing with accepted count 2", drains)
		}
		// The accepted writes landed despite their rejected neighbors.
		if got := mustRead(t, d, 0, 3); !bytes.Equal(got[:2*cfg.SectorSize], good) ||
			!bytes.Equal(got[2*cfg.SectorSize:], pattern(cfg, 1, 0x77)) {
			t.Error("accepted writes in mixed batch produced wrong payload")
		}
	})
}

// TestBatchReadZCPinning checks a batched zero-copy read returns a live
// device-owned view pinned by the zone zc-sequence, and that the pin is
// invalidated by a zone reset exactly as with ReadZCSpan.
func TestBatchReadZCPinning(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		data := pattern(cfg, 3, 0x5A)
		mustWrite(t, d, 0, data, 0)

		cmds := []Cmd{{Op: CmdReadZC, Sector: 1, NSectors: 2}}
		d.SubmitBatch(cmds)
		cm := &cmds[0]
		if err := cm.Fut.Wait(); err != nil {
			t.Fatalf("batched zc read: %v", err)
		}
		if cm.Zone != 0 {
			t.Errorf("zc view zone = %d, want 0", cm.Zone)
		}
		if !bytes.Equal(cm.Data, data[cfg.SectorSize:]) {
			t.Error("zc view does not match written payload")
		}
		if !d.ZCValid(cm.Zone, cm.Seq) {
			t.Error("pin invalid immediately after read")
		}
		if err := d.ResetZone(0).Wait(); err != nil {
			t.Fatal(err)
		}
		if d.ZCValid(cm.Zone, cm.Seq) {
			t.Error("pin still valid after zone reset invalidated the payload")
		}

		// A full zone's unwritten tail reads as zeroes that have no
		// backing bytes: the batch reports ErrZCUnavailable so the
		// caller takes the copying path, exactly like ReadZCSpan.
		mustWrite(t, d, d.ZoneStart(1), pattern(cfg, 1, 0x5B), 0)
		if err := d.FinishZone(1).Wait(); err != nil {
			t.Fatal(err)
		}
		tail := []Cmd{{Op: CmdReadZC, Sector: d.ZoneStart(1), NSectors: 2}}
		d.SubmitBatch(tail)
		if tail[0].Err != ErrZCUnavailable || tail[0].Fut.Wait() != ErrZCUnavailable {
			t.Errorf("full-zone tail zc read: Err = %v, want ErrZCUnavailable", tail[0].Err)
		}
	})
}

// TestBatchAppendChain checks consecutive appends in one batch see each
// other's write-pointer advance: state applies at submit, in order, so
// the second append's assigned sector follows the first.
func TestBatchAppendChain(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		a, b := pattern(cfg, 2, 0x01), pattern(cfg, 3, 0x02)
		cmds := []Cmd{
			{Op: CmdAppend, Zone: 2, Data: a},
			{Op: CmdAppend, Zone: 2, Data: b},
		}
		d.SubmitBatch(cmds)
		if err := awaitBatch(cmds); err != nil {
			t.Fatal(err)
		}
		start := d.ZoneStart(2)
		if cmds[0].Sector != start || cmds[1].Sector != start+2 {
			t.Errorf("append sectors = %d,%d, want %d,%d", cmds[0].Sector, cmds[1].Sector, start, start+2)
		}
		got := mustRead(t, d, start, 5)
		if !bytes.Equal(got, append(append([]byte(nil), a...), b...)) {
			t.Error("chained appends produced wrong payload")
		}
	})
}

// TestBatchPowerLossCompletions checks in-flight batched completions
// observe a device power cut: effects submitted before the cut but not
// yet delivered complete with ErrPowerLoss, mirroring the per-command
// schedule path's epoch check.
func TestBatchPowerLossCompletions(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		cmds := []Cmd{{Op: CmdWrite, Sector: 0, Data: pattern(cfg, 4, 0x3C)}}
		d.SubmitBatch(cmds)
		d.PowerLossAt(nil) // cut before the walker delivers the completion
		if err := cmds[0].Fut.Wait(); err != ErrPowerLoss {
			t.Errorf("write completion after power loss = %v, want ErrPowerLoss", err)
		}
	})
}
