package zns

import (
	"testing"

	"raizn/internal/vclock"
)

// BenchmarkDeviceWrite4K measures host-side simulator cost per device
// write (virtual time excluded by construction).
func BenchmarkDeviceWrite4K(b *testing.B) {
	c := vclock.New()
	c.Run(func() {
		cfg := DefaultConfig()
		cfg.DiscardData = true
		d := NewDevice(c, cfg)
		buf := make([]byte, 4096)
		b.SetBytes(4096)
		b.ResetTimer()
		var sector int64
		zone := 0
		for i := 0; i < b.N; i++ {
			if sector-d.ZoneStart(zone) >= cfg.ZoneCap {
				zone++
				if zone == cfg.NumZones {
					b.StopTimer()
					for z := 0; z < cfg.NumZones; z++ {
						d.ResetZone(z)
					}
					zone = 0
					b.StartTimer()
				}
				sector = d.ZoneStart(zone)
			}
			if err := d.Write(sector, buf, 0).Wait(); err != nil {
				b.Fatal(err)
			}
			sector++
		}
	})
}
