package zns

import (
	"errors"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// This file implements two optional ZNS/NVMe features the paper's §5.4
// discusses as future optimizations for RAIZN:
//
//   - Zone Random Write Area (ZRWA): a window of ZRWASectors behind the
//     write pointer that may be overwritten in place, letting a host
//     update recently written blocks (e.g. partial parity) without
//     violating the sequential-write rule.
//   - Per-block logical metadata (NVMe metadata / protection
//     information): MetaBytes of out-of-band bytes per sector, written
//     with the data and readable back, usable for self-describing log
//     records without a separate header block.
//
// Both are disabled by default (ZRWASectors = 0, MetaBytes = 0), matching
// the devices in the paper's testbed.

// Extension errors.
var (
	ErrNoZRWA       = errors.New("zns: device has no ZRWA configured")
	ErrOutsideZRWA  = errors.New("zns: overwrite outside the random write area")
	ErrNoMeta       = errors.New("zns: device has no per-block metadata configured")
	ErrMetaTooLarge = errors.New("zns: block metadata exceeds configured size")
)

// WriteZRWA submits a write that may overwrite data within the zone's
// random write area: the window [wp-ZRWASectors, wp). Writes may also
// extend past the write pointer (advancing it), so a caller can grow and
// re-grow a record in place. Crash semantics simplification: like normal
// writes, the payload is applied at submit; an unflushed in-place
// overwrite that is lost to power failure reverts to nothing (the zone
// prefix cut), not to the previous version of the block.
func (d *Device) WriteZRWA(sector int64, data []byte, flags Flag) *vclock.Future {
	return d.WriteZRWASpan(nil, sector, data, flags)
}

// WriteZRWASpan is WriteZRWA with a tracing span.
func (d *Device) WriteZRWASpan(sp *obs.Span, sector int64, data []byte, flags Flag) *vclock.Future {
	if d.cfg.ZRWASectors <= 0 {
		return d.failSpan(sp, ErrNoZRWA)
	}
	if len(data) == 0 || len(data)%d.cfg.SectorSize != 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	nSectors := int64(len(data) / d.cfg.SectorSize)

	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return d.failSpan(sp, ErrDeviceFailed)
	}
	z, off, err := d.checkSpan(sector, nSectors)
	if err != nil {
		d.mu.Unlock()
		return d.failSpan(sp, err)
	}
	zo := &d.zones[z]
	switch zo.state {
	case ZoneFull:
		d.mu.Unlock()
		return d.failSpan(sp, ErrZoneFull)
	case ZoneReadOnly, ZoneOffline:
		d.mu.Unlock()
		return d.failSpan(sp, ErrZoneUnavailable)
	}
	// The write must start within (or at the end of) the window.
	lo := zo.wp - d.cfg.ZRWASectors
	if lo < 0 {
		lo = 0
	}
	if off < lo || off > zo.wp {
		d.mu.Unlock()
		return d.failSpan(sp, ErrOutsideZRWA)
	}
	if err := d.transitionToOpenLocked(z); err != nil {
		d.mu.Unlock()
		return d.failSpan(sp, err)
	}
	if !d.cfg.DiscardData {
		if zo.data == nil {
			zo.data = make([]byte, d.cfg.ZoneCap*int64(d.cfg.SectorSize))
		}
		copy(zo.data[off*int64(d.cfg.SectorSize):], data)
		if off < zo.wp {
			zo.zcSeq++ // in-place overwrite invalidates zero-copy views
		}
	}
	end := off + nSectors
	if end > zo.wp {
		zo.unflushed = append(zo.unflushed, extent{start: zo.wp, end: end})
		zo.wp = end
	}
	zo.zrwa = true
	d.finalizeFullLocked(z)
	d.programLocked(z)
	d.hostWriteBytes += nSectors * int64(d.cfg.SectorSize)
	d.writeCmds++
	if d.jrn.Enabled() {
		var fb int64
		if flags&FUA != 0 {
			fb |= 1
		}
		d.jrn.Record(obs.EvDevWrite, d.jslot, z, off, nSectors, zo.wp, fb)
	}
	hf := d.hookLocked("zns.cmd.zrwa", z, sector)

	now := d.clk.Now()
	occ := d.slowLocked(d.cfg.WriteOpOverhead + d.xferTime(len(data), d.cfg.WriteBandwidth))
	sp.SetSegs(1)
	markPipe(sp, d.writeBusy, now)
	media := reservePipe(&d.writeBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.WriteLatency
	epoch := d.epoch
	d.mu.Unlock()

	fut := d.clk.NewFuture()
	fua := flags&FUA != 0
	d.schedule(sp, fut, done, epoch, nil, func() {
		if fua {
			d.persistZoneLocked(z, end)
		}
	})
	fire(hf)
	return fut
}

// AppendMeta is Append with a per-block metadata blob attached to the
// first written sector (the record-header use case). meta must fit the
// configured MetaBytes.
func (d *Device) AppendMeta(z int, data, meta []byte, flags Flag) (int64, *vclock.Future) {
	return d.AppendMetaSpan(nil, z, data, meta, flags)
}

// AppendMetaSpan is AppendMeta with a tracing span.
func (d *Device) AppendMetaSpan(sp *obs.Span, z int, data, meta []byte, flags Flag) (int64, *vclock.Future) {
	if d.cfg.MetaBytes <= 0 {
		return -1, d.failSpan(sp, ErrNoMeta)
	}
	if len(meta) > d.cfg.MetaBytes {
		return -1, d.failSpan(sp, ErrMetaTooLarge)
	}
	sector, fut := d.AppendSpan(sp, z, data, flags)
	if sector < 0 {
		return sector, fut
	}
	d.mu.Lock()
	if d.meta == nil {
		d.meta = make(map[int64][]byte)
	}
	d.meta[sector] = append([]byte(nil), meta...)
	d.mu.Unlock()
	return sector, fut
}

// ReadBlockMeta returns the metadata blob attached to the sector, or nil
// if none was written. The lookup is served from the device's metadata
// region without a data transfer (a simplification of DIF/DIX read
// paths; the callers that scan logs read the data anyway).
func (d *Device) ReadBlockMeta(sector int64) ([]byte, error) {
	if d.cfg.MetaBytes <= 0 {
		return nil, ErrNoMeta
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return nil, ErrDeviceFailed
	}
	m := d.meta[sector]
	if m == nil {
		return nil, nil
	}
	return append([]byte(nil), m...), nil
}

// dropMetaLocked discards block metadata for a reset zone's range.
// Caller holds d.mu.
func (d *Device) dropMetaLocked(z int) {
	if d.meta == nil {
		return
	}
	start := d.ZoneStart(z)
	end := start + d.cfg.ZoneSize
	for s := range d.meta {
		if s >= start && s < end {
			delete(d.meta, s)
		}
	}
}
