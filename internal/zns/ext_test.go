package zns

import (
	"bytes"
	"testing"

	"raizn/internal/vclock"
)

func extTestConfig() Config {
	cfg := testConfig()
	cfg.ZRWASectors = 8
	cfg.MetaBytes = 64
	return cfg
}

func TestZRWADisabledByDefault(t *testing.T) {
	run(t, testConfig(), func(c *vclock.Clock, d *Device) {
		if err := d.WriteZRWA(0, pattern(testConfig(), 1, 1), 0).Wait(); err != ErrNoZRWA {
			t.Errorf("error = %v, want ErrNoZRWA", err)
		}
		if _, err := d.ReadBlockMeta(0); err != ErrNoMeta {
			t.Errorf("meta error = %v, want ErrNoMeta", err)
		}
	})
}

func TestZRWAOverwriteWithinWindow(t *testing.T) {
	cfg := extTestConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 6, 1), 0)
		// Overwrite the last 4 sectors (inside the 8-sector window).
		if err := d.WriteZRWA(2, pattern(cfg, 4, 9), 0).Wait(); err != nil {
			t.Fatal(err)
		}
		got := mustRead(t, d, 0, 6)
		want := append(pattern(cfg, 6, 1)[:2*cfg.SectorSize], pattern(cfg, 4, 9)...)
		if !bytes.Equal(got, want) {
			t.Error("ZRWA overwrite content mismatch")
		}
		if wp := d.Zone(0).WP; wp != 6 {
			t.Errorf("WP = %d, want unchanged 6", wp)
		}
	})
}

func TestZRWAExtendsWritePointer(t *testing.T) {
	cfg := extTestConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 4, 1), 0)
		// Overwrite 2 and extend by 3.
		if err := d.WriteZRWA(2, pattern(cfg, 5, 7), 0).Wait(); err != nil {
			t.Fatal(err)
		}
		if wp := d.Zone(0).WP; wp != 7 {
			t.Errorf("WP = %d, want 7", wp)
		}
	})
}

func TestZRWARejectsOutsideWindow(t *testing.T) {
	cfg := extTestConfig() // window = 8
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 12, 1), 0)
		if err := d.WriteZRWA(2, pattern(cfg, 2, 9), 0).Wait(); err != ErrOutsideZRWA {
			t.Errorf("below-window overwrite error = %v", err)
		}
		if err := d.WriteZRWA(13, pattern(cfg, 1, 9), 0).Wait(); err != ErrOutsideZRWA {
			t.Errorf("gap write error = %v", err)
		}
	})
}

func TestZRWAFullZoneRejected(t *testing.T) {
	cfg := extTestConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, int(cfg.ZoneCap), 1), 0)
		if err := d.WriteZRWA(cfg.ZoneCap-2, pattern(cfg, 1, 9), 0).Wait(); err != ErrZoneFull {
			t.Errorf("full-zone ZRWA error = %v", err)
		}
	})
}

func TestBlockMetaRoundTrip(t *testing.T) {
	cfg := extTestConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		meta := []byte("record-header-0123456789")
		sector, fut := d.AppendMeta(0, pattern(cfg, 3, 1), meta, 0)
		if err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		got, err := d.ReadBlockMeta(sector)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, meta) {
			t.Errorf("meta = %q, want %q", got, meta)
		}
		// Sectors without metadata return nil.
		if m, err := d.ReadBlockMeta(sector + 1); err != nil || m != nil {
			t.Errorf("meta of plain sector = %q, %v", m, err)
		}
	})
}

func TestBlockMetaTooLarge(t *testing.T) {
	cfg := extTestConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		_, fut := d.AppendMeta(0, pattern(cfg, 1, 1), make([]byte, 65), 0)
		if err := fut.Wait(); err != ErrMetaTooLarge {
			t.Errorf("error = %v, want ErrMetaTooLarge", err)
		}
	})
}

func TestBlockMetaClearedByReset(t *testing.T) {
	cfg := extTestConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		sector, fut := d.AppendMeta(2, pattern(cfg, 1, 1), []byte("hdr"), 0)
		if err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := d.ResetZone(2).Wait(); err != nil {
			t.Fatal(err)
		}
		if m, _ := d.ReadBlockMeta(sector); m != nil {
			t.Error("block metadata survived zone reset")
		}
	})
}
