package zns

import "math/rand"

// This file implements latent-error injection: per-sector unreadable
// ("latent") sectors and silent bit-rot of at-rest data. Both are the
// media failure modes a scrub subsystem exists to catch — they do not
// fail the device, they corrupt or withhold individual sectors, and
// they accumulate silently between whole-device failures.
//
// Faults are injected two ways:
//
//   - Explicitly, via InjectReadError / CorruptSector, for targeted
//     tests ("corrupt exactly this stripe unit").
//   - At a configured rate (ReadErrorRate, BitRotRate), drawn from a
//     dedicated *rand.Rand seeded with Config.FaultSeed, so whole fault
//     campaigns replay bit-identically.
//
// Semantics chosen to match real media:
//
//   - A latent read error is persistent: every read covering the sector
//     fails with ErrReadMedium until the zone is reset (zoned media
//     cannot rewrite in place; the host must relocate around it).
//   - Bit-rot mutates the at-rest payload and is applied when data
//     becomes persistent (rot is an at-rest phenomenon; data still in
//     the volatile write cache is not exposed to it). Reads return the
//     rotted bytes without error — detection is the host's problem.

// faultRNGLocked lazily builds the fault RNG. Caller holds d.mu.
func (d *Device) faultRNGLocked() *rand.Rand {
	if d.faultRNG == nil {
		d.faultRNG = rand.New(rand.NewSource(d.cfg.FaultSeed + 1))
	}
	return d.faultRNG
}

// InjectReadError marks the absolute sector as a latent read error:
// every subsequent read covering it completes with ErrReadMedium. The
// error persists until the containing zone is reset.
func (d *Device) InjectReadError(sector int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if sector < 0 || sector >= d.NumSectors() {
		return ErrOutOfRange
	}
	if d.latentErrs == nil {
		d.latentErrs = make(map[int64]bool)
	}
	if !d.latentErrs[sector] {
		d.latentErrs[sector] = true
		d.injectedReadErrs++
	}
	return nil
}

// CorruptSector flips one bit of the sector's at-rest payload (silent
// bit-rot): reads succeed and return the corrupted bytes. The sector
// must be written (below its zone's write pointer) and the device must
// store payloads (DiscardData off).
func (d *Device) CorruptSector(sector int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if d.cfg.DiscardData {
		return ErrNoData
	}
	if sector < 0 || sector >= d.NumSectors() {
		return ErrOutOfRange
	}
	z := d.ZoneOf(sector)
	off := sector - d.ZoneStart(z)
	zo := &d.zones[z]
	if off >= zo.wp || zo.data == nil {
		return ErrReadBeyondWP
	}
	d.corruptSectorLocked(zo, off)
	return nil
}

// corruptSectorLocked flips a deterministic-by-rng bit of zone-relative
// sector off. Caller holds d.mu and has validated off < wp.
func (d *Device) corruptSectorLocked(zo *zone, off int64) {
	rng := d.faultRNGLocked()
	ss := int64(d.cfg.SectorSize)
	byteIdx := off*ss + int64(rng.Intn(d.cfg.SectorSize))
	zo.data[byteIdx] ^= 1 << uint(rng.Intn(8))
	zo.zcSeq++ // in-place mutation invalidates zero-copy views
	d.injectedRot++
}

// applyBitRotLocked draws per-sector rot for the newly persisted range
// [from, to) of zone z. Caller holds d.mu.
func (d *Device) applyBitRotLocked(z int, from, to int64) {
	if d.cfg.BitRotRate <= 0 || d.cfg.DiscardData {
		return
	}
	zo := &d.zones[z]
	if zo.data == nil {
		return
	}
	rng := d.faultRNGLocked()
	for s := from; s < to; s++ {
		if rng.Float64() < d.cfg.BitRotRate {
			d.corruptSectorLocked(zo, s)
		}
	}
}

// readFaultLocked decides whether a read of [sector, sector+n) fails
// with a latent error. Rate-injected errors are sticky: the first rate
// hit marks a concrete sector latent, so retries fail the same way
// until the host relocates around it. Caller holds d.mu.
func (d *Device) readFaultLocked(sector, nSectors int64) error {
	for s := sector; s < sector+nSectors; s++ {
		if d.latentErrs[s] {
			d.readMediumErrs++
			return ErrReadMedium
		}
	}
	if d.cfg.ReadErrorRate > 0 {
		rng := d.faultRNGLocked()
		if rng.Float64() < d.cfg.ReadErrorRate*float64(nSectors) {
			bad := sector + rng.Int63n(nSectors)
			if d.latentErrs == nil {
				d.latentErrs = make(map[int64]bool)
			}
			d.latentErrs[bad] = true
			d.injectedReadErrs++
			d.readMediumErrs++
			return ErrReadMedium
		}
	}
	return nil
}

// dropFaultsLocked clears latent read errors within zone z after a
// reset (the erase block is rewritten; the grown defect is remapped by
// the device, as real SSD FTLs do). Caller holds d.mu.
func (d *Device) dropFaultsLocked(z int) {
	if d.latentErrs == nil {
		return
	}
	start := d.ZoneStart(z)
	end := start + d.cfg.ZoneSize
	for s := range d.latentErrs {
		if s >= start && s < end {
			delete(d.latentErrs, s)
		}
	}
}

// FaultCounters returns lifetime fault-injection counters: sectors
// marked as latent read errors, sectors hit by bit-rot, and reads that
// completed with ErrReadMedium.
func (d *Device) FaultCounters() (latentSectors, rottedSectors, readMediumErrors int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injectedReadErrs, d.injectedRot, d.readMediumErrs
}
