package zns

import (
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// schedule arranges for fut to complete with err at absolute virtual time
// at, applying effect (under the device lock) first — unless the device
// lost power in the meantime, in which case the IO completes with
// ErrPowerLoss and the effect is discarded. The span (nil when tracing
// is off) is ended with the command's outcome at the same instant.
func (d *Device) schedule(sp *obs.Span, fut *vclock.Future, at time.Duration, epoch uint64, err error, effect func()) {
	now := d.clk.Now()
	delay := at - now
	d.clk.AfterFunc(delay, func() {
		d.mu.Lock()
		stale := d.epoch != epoch
		if !stale && effect != nil {
			effect()
		}
		d.mu.Unlock()
		if stale {
			sp.EndAt(at, ErrPowerLoss)
			fut.Complete(ErrPowerLoss)
			return
		}
		sp.EndAt(at, err)
		fut.Complete(err)
	})
}

// pendingIO is the completion half of a command whose state has already
// been applied at submit: the absolute virtual finish time, the error to
// deliver (latent read faults), and the persistence side effects to run
// under the device lock at completion time. It is what PrepareBatch
// collects per command so one walker goroutine can deliver a whole
// batch's completions.
type pendingIO struct {
	at     time.Duration // absolute completion time
	err    error         // completion-time error (e.g. ErrReadMedium)
	snap   []int64       // flush/preflush WP snapshot to persist, or nil
	fuaZ   int           // zone to persist through fuaEnd, or -1
	fuaEnd int64
}

// applyEffectLocked runs the pendingIO's persistence side effects.
// Caller holds d.mu.
func (d *Device) applyEffectLocked(p *pendingIO) {
	if p.snap != nil {
		d.persistSnapshotLocked(p.snap)
	}
	if p.fuaZ >= 0 {
		d.persistZoneLocked(p.fuaZ, p.fuaEnd)
	}
}

// reservePipe allocates occupancy on a pipe (busy is the pipe's busy-until
// field) and returns the transfer's finish time. Caller holds d.mu.
func reservePipe(busy *time.Duration, now time.Duration, occupancy time.Duration) time.Duration {
	start := now
	if *busy > start {
		start = *busy
	}
	*busy = start + occupancy
	return *busy
}

// markPipe records when a command will reach the head of a pipe whose
// busy-until is busy: immediately if the pipe is idle, else when the
// commands ahead of it drain.
func markPipe(sp *obs.Span, busy, now time.Duration) {
	if sp == nil {
		return
	}
	start := now
	if busy > start {
		start = busy
	}
	sp.MarkAt(obs.PhaseQueue, start)
}

func (d *Device) xferTime(n int, bw float64) time.Duration {
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// fail returns a pre-completed future carrying err.
func (d *Device) fail(err error) *vclock.Future { return d.clk.Completed(err) }

// failSpan ends the span with an immediate submission error and returns
// a pre-completed future carrying it.
func (d *Device) failSpan(sp *obs.Span, err error) *vclock.Future {
	sp.End(err)
	return d.fail(err)
}

// slowLocked inflates a pipe occupancy by the injected slowdown factor
// (see SetSlowdown). Caller holds d.mu.
func (d *Device) slowLocked(occ time.Duration) time.Duration {
	if d.slowFactor > 1 {
		occ = time.Duration(float64(occ) * d.slowFactor)
	}
	return occ
}

// checkSpan validates that [sector, sector+n) lies inside a single zone's
// writable capacity and returns the zone index and zone-relative offset.
func (d *Device) checkSpan(sector int64, nSectors int64) (z int, off int64, err error) {
	if sector < 0 || nSectors <= 0 || sector+nSectors > d.NumSectors() {
		return 0, 0, ErrOutOfRange
	}
	z = d.ZoneOf(sector)
	off = sector - d.ZoneStart(z)
	if off+nSectors > d.cfg.ZoneCap {
		if off+nSectors > d.cfg.ZoneSize {
			return 0, 0, ErrZoneBoundary
		}
		return 0, 0, ErrOutOfRange // inside the cap..size gap
	}
	return z, off, nil
}

// Write submits a sequential write of data at the absolute sector. The
// write must start exactly at the zone's write pointer. State (write
// pointer, payload) is applied at submit; the returned future completes
// when the transfer is done. With Preflush, the device cache is flushed
// first; with FUA, the write and all data before it in the same zone are
// persistent once the future completes.
func (d *Device) Write(sector int64, data []byte, flags Flag) *vclock.Future {
	return d.WriteSpan(nil, sector, data, flags)
}

// WriteSpan is Write with a tracing span: the device marks the span's
// queue and media phases and ends it when the command completes.
func (d *Device) WriteSpan(sp *obs.Span, sector int64, data []byte, flags Flag) *vclock.Future {
	if len(data) == 0 || len(data)%d.cfg.SectorSize != 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	nSectors := int64(len(data) / d.cfg.SectorSize)

	d.mu.Lock()
	fut, err := d.writeLocked(sp, sector, nSectors, data, nil, flags)
	var hf func()
	if err == nil {
		hf = d.hookLocked("zns.cmd.write", d.ZoneOf(sector), sector)
	}
	d.mu.Unlock()
	if err != nil {
		return d.failSpan(sp, err)
	}
	fire(hf)
	return fut
}

// Writev submits one sequential write command whose payload is gathered
// from segs (an NVMe-style scatter list). The command is a single device
// command: it pays WriteOpOverhead once and occupies the write pipe for
// one transfer of the combined length, which is what makes host-side
// sub-IO coalescing visible in simulated time. Semantics are otherwise
// identical to Write of the concatenated payload.
func (d *Device) Writev(sector int64, segs [][]byte, flags Flag) *vclock.Future {
	return d.WritevSpan(nil, sector, segs, flags)
}

// WritevSpan is Writev with a tracing span; the span additionally
// records the scatter-list segment count.
func (d *Device) WritevSpan(sp *obs.Span, sector int64, segs [][]byte, flags Flag) *vclock.Future {
	if len(segs) == 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	if len(segs) == 1 {
		return d.WriteSpan(sp, sector, segs[0], flags)
	}
	var nSectors int64
	for _, s := range segs {
		if len(s) == 0 || len(s)%d.cfg.SectorSize != 0 {
			return d.failSpan(sp, ErrUnaligned)
		}
		nSectors += int64(len(s) / d.cfg.SectorSize)
	}

	d.mu.Lock()
	fut, err := d.writeLocked(sp, sector, nSectors, nil, segs, flags)
	var hf func()
	if err == nil {
		hf = d.hookLocked("zns.cmd.write", d.ZoneOf(sector), sector)
	}
	d.mu.Unlock()
	if err != nil {
		return d.failSpan(sp, err)
	}
	fire(hf)
	return fut
}

// Append submits a zone append to zone z: the device assigns the write
// position (the current write pointer) and returns it immediately along
// with the completion future. Real devices report the assigned LBA at
// completion; the simulator can assign it at submit because command
// processing is serialized, which is strictly less reordering than the
// spec permits.
func (d *Device) Append(z int, data []byte, flags Flag) (int64, *vclock.Future) {
	return d.AppendSpan(nil, z, data, flags)
}

// AppendSpan is Append with a tracing span.
func (d *Device) AppendSpan(sp *obs.Span, z int, data []byte, flags Flag) (int64, *vclock.Future) {
	if len(data) == 0 || len(data)%d.cfg.SectorSize != 0 {
		return -1, d.failSpan(sp, ErrUnaligned)
	}
	if z < 0 || z >= d.cfg.NumZones {
		return -1, d.failSpan(sp, ErrOutOfRange)
	}
	nSectors := int64(len(data) / d.cfg.SectorSize)

	d.mu.Lock()
	sector := d.ZoneStart(z) + d.zones[z].wp
	fut, err := d.writeLocked(sp, sector, nSectors, data, nil, flags)
	var hf func()
	if err == nil {
		hf = d.hookLocked("zns.cmd.append", z, sector)
	}
	d.mu.Unlock()
	if err != nil {
		return -1, d.failSpan(sp, err)
	}
	fire(hf)
	return sector, fut
}

// writeLocked performs validation and state transition for Write, Writev
// and Append. The payload is either data (single segment) or segs
// (gathered); exactly one is non-nil. Caller holds d.mu.
func (d *Device) writeLocked(sp *obs.Span, sector, nSectors int64, data []byte, segs [][]byte, flags Flag) (*vclock.Future, error) {
	pio, err := d.writeApplyLocked(sp, sector, nSectors, data, segs, flags)
	if err != nil {
		return nil, err
	}
	fut := d.clk.NewFuture()
	// Capture scalars, not &pio: one closure allocation per command.
	snap, fuaZ, fuaEnd := pio.snap, pio.fuaZ, pio.fuaEnd
	d.schedule(sp, fut, pio.at, d.epoch, nil, func() {
		if snap != nil {
			d.persistSnapshotLocked(snap)
		}
		if fuaZ >= 0 {
			d.persistZoneLocked(fuaZ, fuaEnd)
		}
	})
	return fut, nil
}

// writeApplyLocked is the submit half of writeLocked: it validates the
// command, applies payload and write-pointer state, and reserves the
// write pipe, returning the pending completion. Caller holds d.mu and is
// responsible for delivering the completion (schedule or a batch
// walker).
func (d *Device) writeApplyLocked(sp *obs.Span, sector, nSectors int64, data []byte, segs [][]byte, flags Flag) (pendingIO, error) {
	if d.failed {
		return pendingIO{}, ErrDeviceFailed
	}
	z, off, err := d.checkSpan(sector, nSectors)
	if err != nil {
		return pendingIO{}, err
	}
	zo := &d.zones[z]
	switch zo.state {
	case ZoneFull:
		return pendingIO{}, ErrZoneFull
	case ZoneReadOnly, ZoneOffline:
		return pendingIO{}, ErrZoneUnavailable
	}
	if off != zo.wp {
		return pendingIO{}, ErrNotSequential
	}
	if err := d.transitionToOpenLocked(z); err != nil {
		return pendingIO{}, err
	}

	// Apply payload and advance the write pointer at submit time; zones
	// are append-only so later readers of [off, off+n) observe exactly
	// this data until the zone is reset.
	if !d.cfg.DiscardData {
		if zo.data == nil {
			zo.data = make([]byte, d.cfg.ZoneCap*int64(d.cfg.SectorSize))
		}
		if segs == nil {
			copy(zo.data[off*int64(d.cfg.SectorSize):], data)
		} else {
			pos := off * int64(d.cfg.SectorSize)
			for _, s := range segs {
				copy(zo.data[pos:], s)
				pos += int64(len(s))
			}
		}
	}
	end := off + nSectors
	zo.wp = end
	zo.unflushed = append(zo.unflushed, extent{start: off, end: end})
	d.finalizeFullLocked(z)
	d.programLocked(z)
	d.hostWriteBytes += nSectors * int64(d.cfg.SectorSize)
	d.writeCmds++
	if d.jrn.Enabled() {
		var fb int64
		if flags&FUA != 0 {
			fb |= 1
		}
		if flags&Preflush != 0 {
			fb |= 2
		}
		d.jrn.Record(obs.EvDevWrite, d.jslot, z, off, nSectors, end, fb)
	}

	// A preflush acts on everything written before this command.
	var flushSnap []int64
	if flags&Preflush != 0 {
		flushSnap = d.snapshotWPsLocked()
		// Exclude this write itself from the snapshot persist; FUA
		// handling below covers it if requested.
		flushSnap[z] = off
	}

	now := d.clk.Now()
	occ := d.cfg.WriteOpOverhead + d.xferTime(int(nSectors)*d.cfg.SectorSize, d.cfg.WriteBandwidth)
	if flags&Preflush != 0 {
		occ += d.cfg.FlushLatency
	}
	occ = d.slowLocked(occ)
	if sp != nil {
		nseg := 1
		if segs != nil {
			nseg = len(segs)
		}
		sp.SetSegs(nseg)
		markPipe(sp, d.writeBusy, now)
	}
	media := reservePipe(&d.writeBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.WriteLatency

	pio := pendingIO{at: done, snap: flushSnap, fuaZ: -1}
	if flags&FUA != 0 {
		pio.fuaZ, pio.fuaEnd = z, end
	}
	return pio, nil
}

// Read fills buf with data starting at the absolute sector. Reads below
// the write pointer return the written payload; reads above it fail,
// except in full (finished) zones where unwritten sectors read as zeroes
// (deallocated blocks).
func (d *Device) Read(sector int64, buf []byte) *vclock.Future {
	return d.ReadSpan(nil, sector, buf)
}

// ReadSpan is Read with a tracing span.
func (d *Device) ReadSpan(sp *obs.Span, sector int64, buf []byte) *vclock.Future {
	if len(buf) == 0 || len(buf)%d.cfg.SectorSize != 0 {
		return d.failSpan(sp, ErrUnaligned)
	}
	nSectors := int64(len(buf) / d.cfg.SectorSize)

	d.mu.Lock()
	pio, err := d.readApplyLocked(sp, sector, nSectors, buf)
	epoch := d.epoch
	d.mu.Unlock()
	if err != nil {
		return d.failSpan(sp, err)
	}

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, pio.at, epoch, pio.err, nil)
	return fut
}

// readApplyLocked is the submit half of Read: it validates the span,
// snapshots the payload into buf, charges the read pipe and returns the
// pending completion (whose err field carries any latent media error).
// Caller holds d.mu.
func (d *Device) readApplyLocked(sp *obs.Span, sector, nSectors int64, buf []byte) (pendingIO, error) {
	if d.failed {
		return pendingIO{}, ErrDeviceFailed
	}
	z, off, err := d.checkSpan(sector, nSectors)
	if err != nil {
		return pendingIO{}, err
	}
	zo := &d.zones[z]
	if zo.state == ZoneOffline {
		return pendingIO{}, ErrZoneUnavailable
	}
	if off+nSectors > zo.wp && zo.state != ZoneFull {
		return pendingIO{}, ErrReadBeyondWP
	}

	// Snapshot the payload at submit. Zones are immutable below the
	// write pointer, so this equals completion-time data unless the zone
	// is concurrently reset — in which case either snapshot is a legal
	// outcome of the race.
	ss := int64(d.cfg.SectorSize)
	if d.cfg.DiscardData || zo.data == nil {
		for i := range buf {
			buf[i] = 0
		}
	} else {
		written := zo.wp
		for i := int64(0); i < nSectors; i++ {
			dst := buf[i*ss : (i+1)*ss]
			if off+i < written {
				copy(dst, zo.data[(off+i)*ss:(off+i+1)*ss])
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
	}
	d.hostReadBytes += nSectors * ss

	// Latent media errors: the transfer is attempted (it occupies the
	// pipe and pays the latency) but completes with ErrReadMedium.
	rerr := d.readFaultLocked(sector, nSectors)

	now := d.clk.Now()
	occ := d.slowLocked(d.cfg.ReadOpOverhead + d.xferTime(int(nSectors)*d.cfg.SectorSize, d.cfg.ReadBandwidth))
	markPipe(sp, d.readBusy, now)
	media := reservePipe(&d.readBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.ReadLatency
	return pendingIO{at: done, err: rerr, fuaZ: -1}, nil
}

// Flush persists the device's volatile write cache: every write submitted
// before the flush is durable once the returned future completes.
func (d *Device) Flush() *vclock.Future {
	return d.FlushSpan(nil)
}

// FlushSpan is Flush with a tracing span.
func (d *Device) FlushSpan(sp *obs.Span) *vclock.Future {
	d.mu.Lock()
	pio, err := d.flushApplyLocked(sp)
	epoch := d.epoch
	var hf func()
	if err == nil {
		hf = d.hookLocked("zns.cmd.flush", -1, d.flushCount)
	}
	d.mu.Unlock()
	if err != nil {
		return d.failSpan(sp, err)
	}

	fut := d.clk.NewFuture()
	snap := pio.snap
	d.schedule(sp, fut, pio.at, epoch, nil, func() { d.persistSnapshotLocked(snap) })
	fire(hf)
	return fut
}

// flushApplyLocked is the submit half of Flush: it snapshots every
// zone's write pointer and charges the write pipe; the snapshot persists
// at completion. Caller holds d.mu.
func (d *Device) flushApplyLocked(sp *obs.Span) (pendingIO, error) {
	if d.failed {
		return pendingIO{}, ErrDeviceFailed
	}
	snap := d.snapshotWPsLocked()
	now := d.clk.Now()
	markPipe(sp, d.writeBusy, now)
	done := reservePipe(&d.writeBusy, now, d.cfg.FlushLatency)
	sp.MarkAt(obs.PhaseMedia, done)
	d.flushCount++
	d.jrn.Record(obs.EvDevFlush, d.jslot, -1, d.flushCount, 0, 0, 0)
	return pendingIO{at: done, snap: snap, fuaZ: -1}, nil
}

// snapshotWPsLocked captures every zone's write pointer. Caller holds d.mu.
func (d *Device) snapshotWPsLocked() []int64 {
	snap := make([]int64, len(d.zones))
	for i := range d.zones {
		snap[i] = d.zones[i].wp
	}
	return snap
}

// persistSnapshotLocked marks each zone persistent up to the snapshot
// taken at flush submit. Caller holds d.mu.
func (d *Device) persistSnapshotLocked(snap []int64) {
	for i := range snap {
		d.persistZoneLocked(i, snap[i])
	}
}

// persistZoneLocked advances zone z's persisted prefix to upTo (a zone-
// relative sector). Caller holds d.mu.
func (d *Device) persistZoneLocked(z int, upTo int64) {
	zo := &d.zones[z]
	if upTo <= zo.pwp {
		return
	}
	if upTo > zo.wp {
		upTo = zo.wp
	}
	d.applyBitRotLocked(z, zo.pwp, upTo)
	zo.pwp = upTo
	keep := zo.unflushed[:0]
	for _, e := range zo.unflushed {
		if e.end <= upTo {
			continue
		}
		if e.start < upTo {
			e.start = upTo
		}
		keep = append(keep, e)
	}
	zo.unflushed = keep
}

// ResetZone erases zone z, returning it to the empty state. The reset is
// durable at submit (power loss between the resets of different array
// devices — the case RAIZN must handle — is still fully expressible by
// resetting a subset of devices before PowerLoss).
func (d *Device) ResetZone(z int) *vclock.Future {
	return d.ResetZoneSpan(nil, z)
}

// ResetZoneSpan is ResetZone with a tracing span.
func (d *Device) ResetZoneSpan(sp *obs.Span, z int) *vclock.Future {
	d.mu.Lock()
	pio, hookArg, err := d.resetApplyLocked(sp, z)
	epoch := d.epoch
	var hf func()
	if err == nil {
		hf = d.hookLocked("zns.zone.reset", z, hookArg)
	}
	d.mu.Unlock()
	if err != nil {
		return d.failSpan(sp, err)
	}

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, pio.at, epoch, nil, nil)
	fire(hf)
	return fut
}

// resetApplyLocked is the submit half of ResetZone: the erase is applied
// at submit (durable immediately) and the reset occupies the write pipe.
// Returns the zone's prior write pointer for the crash-point hook.
// Caller holds d.mu.
func (d *Device) resetApplyLocked(sp *obs.Span, z int) (pendingIO, int64, error) {
	if d.failed {
		return pendingIO{}, 0, ErrDeviceFailed
	}
	if z < 0 || z >= d.cfg.NumZones {
		return pendingIO{}, 0, ErrOutOfRange
	}
	zo := &d.zones[z]
	if zo.state == ZoneReadOnly || zo.state == ZoneOffline {
		return pendingIO{}, 0, ErrZoneUnavailable
	}
	switch zo.state {
	case ZoneOpen:
		d.nOpen--
		d.nActive--
	case ZoneClosed:
		d.nActive--
	}
	wpBefore := zo.wp
	zo.state = ZoneEmpty
	zo.wp = 0
	zo.pwp = 0
	zo.finished = false
	zo.unflushed = nil
	zo.data = nil
	zo.zcSeq++
	// Unprogrammed (in-ZRWA) bytes are discarded without ever reaching
	// flash; the cumulative program counter never rolls back.
	zo.prog = 0
	zo.zrwa = false
	d.dropMetaLocked(z)
	d.dropFaultsLocked(z)
	d.resetCount++
	d.jrn.Record(obs.EvZoneReset, d.jslot, z,
		wpBefore, d.resetCount, int64(d.nOpen), int64(d.nActive))

	now := d.clk.Now()
	markPipe(sp, d.writeBusy, now)
	done := reservePipe(&d.writeBusy, now, d.cfg.ResetLatency)
	sp.MarkAt(obs.PhaseMedia, done)
	return pendingIO{at: done, fuaZ: -1}, wpBefore, nil
}

// FinishZone transitions zone z to full without writing the remaining
// capacity. Unwritten sectors subsequently read as zeroes. Finishing also
// persists the zone's contents.
func (d *Device) FinishZone(z int) *vclock.Future {
	return d.FinishZoneSpan(nil, z)
}

// FinishZoneSpan is FinishZone with a tracing span.
func (d *Device) FinishZoneSpan(sp *obs.Span, z int) *vclock.Future {
	d.mu.Lock()
	pio, hookArg, err := d.finishApplyLocked(sp, z)
	epoch := d.epoch
	var hf func()
	if err == nil {
		hf = d.hookLocked("zns.zone.finish", z, hookArg)
	}
	d.mu.Unlock()
	if err != nil {
		return d.failSpan(sp, err)
	}

	fut := d.clk.NewFuture()
	d.schedule(sp, fut, pio.at, epoch, nil, nil)
	fire(hf)
	return fut
}

// finishApplyLocked is the submit half of FinishZone. Caller holds d.mu.
func (d *Device) finishApplyLocked(sp *obs.Span, z int) (pendingIO, int64, error) {
	if d.failed {
		return pendingIO{}, 0, ErrDeviceFailed
	}
	if z < 0 || z >= d.cfg.NumZones {
		return pendingIO{}, 0, ErrOutOfRange
	}
	zo := &d.zones[z]
	if zo.state == ZoneReadOnly || zo.state == ZoneOffline {
		return pendingIO{}, 0, ErrZoneUnavailable
	}
	switch zo.state {
	case ZoneOpen:
		d.nOpen--
		d.nActive--
	case ZoneClosed:
		d.nActive--
	}
	wpBefore := zo.wp
	zo.state = ZoneFull
	zo.finished = true
	d.programLocked(z) // finishing commits any in-ZRWA tail to flash
	d.persistZoneLocked(z, zo.wp)
	d.jrn.Record(obs.EvZoneFinish, d.jslot, z,
		wpBefore, 0, int64(d.nOpen), int64(d.nActive))

	now := d.clk.Now()
	markPipe(sp, d.writeBusy, now)
	done := reservePipe(&d.writeBusy, now, d.cfg.FinishLatency)
	sp.MarkAt(obs.PhaseMedia, done)
	return pendingIO{at: done, fuaZ: -1}, wpBefore, nil
}
