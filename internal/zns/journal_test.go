package zns

import (
	"bytes"
	"strings"
	"testing"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// TestZoneStateOrdinals asserts the correspondence the obs package
// relies on: its device-neutral zone-state ordinals mirror ZoneState
// exactly (obs cannot import zns).
func TestZoneStateOrdinals(t *testing.T) {
	pairs := []struct {
		zns ZoneState
		obs int
	}{
		{ZoneEmpty, obs.ZoneStateEmpty},
		{ZoneOpen, obs.ZoneStateOpen},
		{ZoneClosed, obs.ZoneStateClosed},
		{ZoneFull, obs.ZoneStateFull},
		{ZoneReadOnly, obs.ZoneStateReadOnly},
		{ZoneOffline, obs.ZoneStateOffline},
	}
	for _, p := range pairs {
		if int(p.zns) != p.obs {
			t.Errorf("ordinal mismatch: zns %v = %d, obs = %d", p.zns, int(p.zns), p.obs)
		}
		if got := obs.ZoneStateName(p.obs); got != p.zns.String() {
			t.Errorf("name mismatch for ordinal %d: obs %q, zns %q", p.obs, got, p.zns.String())
		}
	}
	if obs.NumZoneStates != int(ZoneOffline)+1 {
		t.Errorf("obs.NumZoneStates = %d, zns has %d states", obs.NumZoneStates, int(ZoneOffline)+1)
	}
}

func TestDeviceJournalsZoneLifecycle(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		j := obs.NewJournal(c, obs.JournalConfig{})
		j.Enable()
		d.AttachJournal(j, 3)
		if d.Journal() != j {
			t.Fatal("Journal() did not return the attached journal")
		}

		// Implicit open via write, then finish, then reset.
		mustWrite(t, d, d.ZoneStart(1), pattern(cfg, 4, 1), 0)
		if err := d.FinishZone(1).Wait(); err != nil {
			t.Fatal(err)
		}
		if err := d.ResetZone(1).Wait(); err != nil {
			t.Fatal(err)
		}

		var states, finishes, resets []obs.Event
		for _, e := range j.Events() {
			if e.Src != 3 {
				t.Fatalf("event with src %d, want 3: %+v", e.Src, e)
			}
			switch e.Type {
			case obs.EvZoneState:
				states = append(states, e)
			case obs.EvZoneFinish:
				finishes = append(finishes, e)
			case obs.EvZoneReset:
				resets = append(resets, e)
			}
		}
		if len(states) == 0 {
			t.Fatal("no zone-state events")
		}
		first := states[0]
		if first.Zone != 1 || first.A != int64(ZoneOpen) || first.C != 1 || first.D != 1 {
			t.Fatalf("open event = %+v", first)
		}
		if len(finishes) != 1 || finishes[0].A != 4 {
			t.Fatalf("finish events = %+v (want one with wp_before=4)", finishes)
		}
		// Finish seals the zone without moving the write pointer, so the
		// reset still sees wp=4.
		if len(resets) != 1 || resets[0].A != 4 || resets[0].B != 1 {
			t.Fatalf("reset events = %+v (want one with wp_before=4 count=1)", resets)
		}
		// After reset, open/active are back to zero.
		if resets[0].C != 0 || resets[0].D != 0 {
			t.Fatalf("reset open/active = %d/%d, want 0/0", resets[0].C, resets[0].D)
		}
	})
}

func TestZoneStateMetrics(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		r := obs.NewRegistry()
		RegisterZoneStateMetrics(r, []*Device{d})
		mustWrite(t, d, d.ZoneStart(0), pattern(cfg, 2, 1), 0)
		mustWrite(t, d, d.ZoneStart(1), pattern(cfg, 2, 2), 0)
		if err := d.CloseZone(1); err != nil {
			t.Fatal(err)
		}
		snap := r.Snapshot()
		if got := snap.Gauges["zns_zone_state_open_zones"]; got != 1 {
			t.Errorf("open zones = %d, want 1", got)
		}
		if got := snap.Gauges["zns_zone_state_closed_zones"]; got != 1 {
			t.Errorf("closed zones = %d, want 1", got)
		}
		if got := snap.Gauges["zns_zone_state_empty_zones"]; got != int64(cfg.NumZones)-2 {
			t.Errorf("empty zones = %d, want %d", got, cfg.NumZones-2)
		}
		if got := snap.Gauges["zns_zone_state_open_total"]; got != 1 {
			t.Errorf("open total = %d, want 1", got)
		}
		if got := snap.Gauges["zns_zone_state_active_total"]; got != 2 {
			t.Errorf("active total = %d, want 2", got)
		}
		d.SetZoneState(2, ZoneReadOnly)
		snap = r.Snapshot()
		if got := snap.Gauges["zns_zone_state_read_only_zones"]; got != 1 {
			t.Errorf("read-only zones = %d, want 1", got)
		}
		var buf bytes.Buffer
		if err := snap.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "# HELP zns_zone_state_open_zones ") {
			t.Errorf("HELP line missing for zns_zone_state_open_zones:\n%s", buf.String())
		}
	})
}
