package zns

import "raizn/internal/obs"

// RegisterMetrics publishes the device's lifetime counters into the
// registry as pull-style gauges under the given prefix (conventionally
// "zns_dev<i>"). The gauge funcs take d.mu at snapshot time, so
// snapshots must not be taken while holding the device lock.
func (d *Device) RegisterMetrics(r *obs.Registry, prefix string) {
	lockedInt := func(f func() int64) func() int64 {
		return func() int64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc(prefix+"_host_write_bytes", lockedInt(func() int64 { return d.hostWriteBytes }))
	r.GaugeFunc(prefix+"_host_read_bytes", lockedInt(func() int64 { return d.hostReadBytes }))
	r.GaugeFunc(prefix+"_write_cmds_total", lockedInt(func() int64 { return d.writeCmds }))
	r.GaugeFunc(prefix+"_flushes_total", lockedInt(func() int64 { return d.flushCount }))
	r.GaugeFunc(prefix+"_resets_total", lockedInt(func() int64 { return d.resetCount }))
	r.GaugeFunc(prefix+"_latent_sectors_total", lockedInt(func() int64 { return d.injectedReadErrs }))
	r.GaugeFunc(prefix+"_bitrot_sectors_total", lockedInt(func() int64 { return d.injectedRot }))
	r.GaugeFunc(prefix+"_read_medium_errs_total", lockedInt(func() int64 { return d.readMediumErrs }))
}
