package zns

import (
	"strings"

	"raizn/internal/obs"
)

// RegisterMetrics publishes the device's lifetime counters into the
// registry as pull-style gauges under the given prefix (conventionally
// "zns_dev<i>"). The gauge funcs take d.mu at snapshot time, so
// snapshots must not be taken while holding the device lock.
func (d *Device) RegisterMetrics(r *obs.Registry, prefix string) {
	lockedInt := func(f func() int64) func() int64 {
		return func() int64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return f()
		}
	}
	g := func(name, help string, f func() int64) {
		r.Help(prefix+name, help)
		r.GaugeFunc(prefix+name, lockedInt(f))
	}
	g("_host_write_bytes", "bytes the host wrote to the device (write/append commands)", func() int64 { return d.hostWriteBytes })
	g("_flash_program_bytes", "bytes actually programmed to flash (host writes minus ZRWA overwrites never programmed)", func() int64 { return d.flashProgramBytes })
	g("_host_read_bytes", "bytes the host read from the device", func() int64 { return d.hostReadBytes })
	g("_write_cmds_total", "write/append commands the device accepted", func() int64 { return d.writeCmds })
	g("_flushes_total", "flush commands the device completed", func() int64 { return d.flushCount })
	g("_resets_total", "zone resets the device completed", func() int64 { return d.resetCount })
	g("_latent_sectors_total", "sectors carrying an injected latent read error", func() int64 { return d.injectedReadErrs })
	g("_bitrot_sectors_total", "sectors carrying injected bit rot", func() int64 { return d.injectedRot })
	g("_read_medium_errs_total", "read commands failed with a medium error", func() int64 { return d.readMediumErrs })
	g("_open_zones", "zones currently open on the device", func() int64 { return int64(d.nOpen) })
	g("_active_zones", "zones currently active (open or closed) on the device", func() int64 { return int64(d.nActive) })
}

// stateCountLocked counts zones currently in state st. Caller holds d.mu.
func (d *Device) stateCountLocked(st ZoneState) int64 {
	var n int64
	for i := range d.zones {
		if d.zones[i].state == st {
			n++
		}
	}
	return n
}

// RegisterZoneStateMetrics publishes aggregate zone-lifecycle gauges —
// zns_zone_state_<state>_zones plus total open/active counts — summed
// over the given devices. One registration covers a whole array.
func RegisterZoneStateMetrics(r *obs.Registry, devs []*Device) {
	sum := func(f func(d *Device) int64) func() int64 {
		return func() int64 {
			var n int64
			for _, d := range devs {
				d.mu.Lock()
				n += f(d)
				d.mu.Unlock()
			}
			return n
		}
	}
	for st := ZoneEmpty; st <= ZoneOffline; st++ {
		st := st
		// Metric names must be snake_case: "read-only" -> "read_only".
		name := "zns_zone_state_" + strings.ReplaceAll(st.String(), "-", "_") + "_zones"
		r.Help(name, "zones currently in the "+st.String()+" lifecycle state, summed over array devices")
		r.GaugeFunc(name, sum(func(d *Device) int64 { return d.stateCountLocked(st) }))
	}
	r.Help("zns_zone_state_open_total", "open zones summed over array devices (open/active limit pressure)")
	r.GaugeFunc("zns_zone_state_open_total", sum(func(d *Device) int64 { return int64(d.nOpen) }))
	r.Help("zns_zone_state_active_total", "active (open+closed) zones summed over array devices")
	r.GaugeFunc("zns_zone_state_active_total", sum(func(d *Device) int64 { return int64(d.nActive) }))
}

// AttachJournal points the device at a shared event journal: zone
// lifecycle transitions (open/close/full, reset, finish) record under
// source slot (conventionally the device's array index). Safe to call
// before any IO; passing nil detaches.
func (d *Device) AttachJournal(j *obs.Journal, slot int) {
	d.mu.Lock()
	d.jrn, d.jslot = j, slot
	d.mu.Unlock()
}

// Journal returns the attached journal (nil if none).
func (d *Device) Journal() *obs.Journal {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jrn
}

// AttachHook points the device at a crash-point hook: every accepted
// write/append/flush command and zone reset/finish fires one obs.HookPoint
// under source slot, after the state transition is applied and with no
// device lock held. Attach before issuing IO; passing nil detaches.
func (d *Device) AttachHook(h obs.Hook, slot int) {
	d.mu.Lock()
	d.hook, d.hslot = h, slot
	d.mu.Unlock()
}

// hookLocked returns a fire closure for the named point, or nil when no
// hook is attached. Caller holds d.mu; the returned closure must be
// invoked after d.mu is released (hooks may call back into the device).
func (d *Device) hookLocked(name string, zone int, arg int64) func() {
	if d.hook == nil {
		return nil
	}
	h, p := d.hook, obs.HookPoint{Name: name, Src: d.hslot, Zone: zone, Arg: arg}
	return func() { h(p) }
}

// fire invokes a hookLocked closure; no-op on nil.
func fire(f func()) {
	if f != nil {
		f()
	}
}
