package zns

import (
	"math/rand"

	"raizn/internal/vclock"
)

// Fail marks the device as dead: every subsequent operation returns
// ErrDeviceFailed. In-flight operations complete normally (their data had
// already reached the device). This models whole-device failure for
// degraded-mode and rebuild testing.
func (d *Device) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

// Failed reports whether the device has been failed.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// PowerLoss simulates an abrupt power failure followed by power-on:
//
//   - Flushed data (each zone's persisted prefix) always survives.
//   - Unflushed writes survive as a per-zone prefix: within each zone the
//     device picks a cut point at an unflushed-write or atomic-write-
//     granularity boundary; data before the cut survives, data after is
//     lost. This models the ZNS guarantee that data at an LBA is never
//     persisted before data at preceding LBAs of the same zone.
//   - In-flight operations complete with ErrPowerLoss.
//   - All open zones transition to closed (empty if nothing written),
//     as on a real power cycle.
//
// rng drives the cut-point choice; pass a seeded source for reproducible
// crashes. PowerLoss with a nil rng keeps only flushed data (the most
// pessimistic outcome).
func (d *Device) PowerLoss(rng *rand.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for z := range d.zones {
		cut := d.zones[z].pwp
		if rng != nil {
			cut = d.pickCutLocked(z, rng)
		}
		d.applyCutLocked(z, cut)
	}
	d.finishPowerCycleLocked()
}

// PowerLossAt simulates power loss with an exact survival point per zone:
// cuts maps zone index to the zone-relative sector count that survives.
// Zones not in the map keep only their flushed prefix. Cut points are
// clamped to [pwp, wp]. This is the deterministic variant used by crash-
// consistency tests to construct precise stripe-hole scenarios.
func (d *Device) PowerLossAt(cuts map[int]int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for z := range d.zones {
		cut := d.zones[z].pwp
		if c, ok := cuts[z]; ok {
			if c < d.zones[z].pwp {
				c = d.zones[z].pwp
			}
			if c > d.zones[z].wp {
				c = d.zones[z].wp
			}
			cut = c
		}
		d.applyCutLocked(z, cut)
	}
	d.finishPowerCycleLocked()
}

// pickCutLocked chooses a random survival point for zone z among the
// valid candidates: the persisted prefix, the end of each unflushed
// write, and atomic-granularity boundaries inside unflushed writes.
func (d *Device) pickCutLocked(z int, rng *rand.Rand) int64 {
	zo := &d.zones[z]
	candidates := []int64{zo.pwp}
	for _, e := range zo.unflushed {
		for b := e.start + d.cfg.AtomicWriteSectors; b < e.end; b += d.cfg.AtomicWriteSectors {
			candidates = append(candidates, b)
		}
		candidates = append(candidates, e.end)
	}
	return candidates[rng.Intn(len(candidates))]
}

// applyCutLocked discards all zone data at and beyond the cut point.
func (d *Device) applyCutLocked(z int, cut int64) {
	zo := &d.zones[z]
	if cut < zo.wp && zo.data != nil {
		ss := int64(d.cfg.SectorSize)
		tail := zo.data[cut*ss : zo.wp*ss]
		for i := range tail {
			tail[i] = 0
		}
		zo.zcSeq++ // in-place truncation invalidates zero-copy views
	}
	// A full zone's fullness is durable only if it became full on media;
	// if the cut rolls back below capacity the zone is no longer full.
	zo.wp = cut
	zo.pwp = cut
	zo.unflushed = nil
	// In-ZRWA bytes past the cut are gone; the cumulative flash counter
	// never rolls back, but the zone's programmed pointer cannot exceed
	// its surviving contents.
	if zo.prog > cut {
		zo.prog = cut
	}
}

// CrashClone returns a new device, bound to clk, whose state is this
// device's state after an abrupt power loss — without disturbing the
// receiver. It is the explorer's snapshot primitive: the live run keeps
// executing while recovery is exercised against the clone.
//
// Cut-point selection per zone, in precedence order: an entry in cuts
// (PowerLossAt semantics — clamped to [pwp, wp]); else a draw from rng
// (PowerLoss semantics); else the persisted prefix only (the most
// pessimistic legal outcome). The clone carries no journal, metrics or
// hook attachments, and its lifetime counters start at zero.
func (d *Device) CrashClone(clk *vclock.Clock, rng *rand.Rand, cuts map[int]int64) *Device {
	d.mu.Lock()
	defer d.mu.Unlock()
	if clk == nil {
		clk = d.clk
	}
	c := &Device{
		cfg:    d.cfg,
		clk:    clk,
		zones:  make([]zone, len(d.zones)),
		failed: d.failed,
	}
	for z := range d.zones {
		zo := d.zones[z]
		cz := zo
		if zo.data != nil {
			cz.data = append([]byte(nil), zo.data...)
		}
		cz.unflushed = append([]extent(nil), zo.unflushed...)
		c.zones[z] = cz
	}
	if d.latentErrs != nil {
		c.latentErrs = make(map[int64]bool, len(d.latentErrs))
		for s, v := range d.latentErrs {
			c.latentErrs[s] = v
		}
	}
	if d.meta != nil {
		c.meta = make(map[int64][]byte, len(d.meta))
		for s, m := range d.meta {
			c.meta[s] = append([]byte(nil), m...)
		}
	}
	// The clone is unshared, so its zone mutators run without its lock.
	for z := range c.zones {
		cut := c.zones[z].pwp
		switch {
		case cuts != nil:
			if x, ok := cuts[z]; ok {
				if x < cut {
					x = cut
				}
				if x > c.zones[z].wp {
					x = c.zones[z].wp
				}
				cut = x
			}
		case rng != nil:
			cut = c.pickCutLocked(z, rng)
		}
		c.applyCutLocked(z, cut)
	}
	c.finishPowerCycleLocked()
	// Per-block metadata shares the fate of its sector's data.
	if c.meta != nil {
		for s := range c.meta {
			z := c.ZoneOf(s)
			if s-c.ZoneStart(z) >= c.zones[z].wp {
				delete(c.meta, s)
			}
		}
	}
	return c
}

// finishPowerCycleLocked recomputes zone states and resets volatile
// device state after the cut points are applied.
func (d *Device) finishPowerCycleLocked() {
	d.nOpen = 0
	d.nActive = 0
	for z := range d.zones {
		zo := &d.zones[z]
		switch zo.state {
		case ZoneReadOnly, ZoneOffline:
			continue // media failure states survive power cycles
		}
		switch {
		case zo.finished || zo.wp >= d.cfg.ZoneCap:
			zo.state = ZoneFull
		case zo.wp == 0:
			zo.state = ZoneEmpty
		default:
			zo.state = ZoneClosed
			d.nActive++
		}
	}
	d.epoch++
	d.writeBusy = 0
	d.readBusy = 0
}
