package zns

import (
	"bytes"
	"testing"

	"raizn/internal/vclock"
)

// TestPowerLossAtEdges tables the corner cases of the deterministic
// power-loss primitive: cut clamping against the flushed prefix and the
// write pointer, zones absent from the cut map, finished and media-failed
// zones, fullness durability, and open-zone accounting across the cycle.
func TestPowerLossAtEdges(t *testing.T) {
	cases := []struct {
		name   string
		setup  func(t *testing.T, d *Device)
		cuts   map[int]int64
		verify func(t *testing.T, d *Device)
	}{
		{
			name: "cut beyond wp clamps down",
			setup: func(t *testing.T, d *Device) {
				mustWrite(t, d, 0, pattern(testConfig(), 6, 1), 0)
			},
			cuts: map[int]int64{0: 40},
			verify: func(t *testing.T, d *Device) {
				if wp := d.Zone(0).WP; wp != 6 {
					t.Errorf("WP = %d, want clamp to written 6", wp)
				}
			},
		},
		{
			name: "cut below flushed prefix clamps up",
			setup: func(t *testing.T, d *Device) {
				mustWrite(t, d, 0, pattern(testConfig(), 4, 1), 0)
				if err := d.Flush().Wait(); err != nil {
					t.Fatal(err)
				}
				mustWrite(t, d, 4, pattern(testConfig(), 4, 2), 0)
			},
			cuts: map[int]int64{0: 1},
			verify: func(t *testing.T, d *Device) {
				if wp := d.Zone(0).WP; wp != 4 {
					t.Errorf("WP = %d, want flushed 4", wp)
				}
				got := mustRead(t, d, 0, 4)
				if !bytes.Equal(got, pattern(testConfig(), 4, 1)) {
					t.Error("flushed prefix corrupted by cut")
				}
			},
		},
		{
			name: "zero cut with only unflushed data empties the zone",
			setup: func(t *testing.T, d *Device) {
				mustWrite(t, d, 0, pattern(testConfig(), 5, 1), 0)
			},
			cuts: map[int]int64{0: 0},
			verify: func(t *testing.T, d *Device) {
				zd := d.Zone(0)
				if zd.WP != 0 || zd.State != ZoneEmpty {
					t.Errorf("zone = wp %d state %v, want empty at 0", zd.WP, zd.State)
				}
			},
		},
		{
			name: "zone absent from the map keeps only its flushed prefix",
			setup: func(t *testing.T, d *Device) {
				mustWrite(t, d, 0, pattern(testConfig(), 3, 1), 0)
				if err := d.Flush().Wait(); err != nil {
					t.Fatal(err)
				}
				mustWrite(t, d, 3, pattern(testConfig(), 3, 2), 0)
			},
			cuts: map[int]int64{1: 0}, // zone 0 unlisted
			verify: func(t *testing.T, d *Device) {
				if wp := d.Zone(0).WP; wp != 3 {
					t.Errorf("unlisted zone WP = %d, want flushed 3", wp)
				}
			},
		},
		{
			name: "finished zone stays full and keeps its data",
			setup: func(t *testing.T, d *Device) {
				mustWrite(t, d, 0, pattern(testConfig(), 4, 1), 0)
				if err := d.FinishZone(0).Wait(); err != nil {
					t.Fatal(err)
				}
			},
			cuts: map[int]int64{0: 0},
			verify: func(t *testing.T, d *Device) {
				zd := d.Zone(0)
				if zd.State != ZoneFull {
					t.Errorf("finished zone state = %v, want full", zd.State)
				}
				got := mustRead(t, d, 0, 4)
				if !bytes.Equal(got, pattern(testConfig(), 4, 1)) {
					t.Error("finished zone content lost")
				}
			},
		},
		{
			name: "unflushed fullness is not durable",
			setup: func(t *testing.T, d *Device) {
				cfg := testConfig()
				mustWrite(t, d, 0, pattern(cfg, int(cfg.ZoneCap), 1), 0)
				if st := d.Zone(0).State; st != ZoneFull {
					t.Fatalf("pre-crash state = %v, want full", st)
				}
			},
			cuts: map[int]int64{0: 10},
			verify: func(t *testing.T, d *Device) {
				zd := d.Zone(0)
				if zd.WP != 10 || zd.State != ZoneClosed {
					t.Errorf("zone = wp %d state %v, want closed at 10", zd.WP, zd.State)
				}
			},
		},
		{
			name: "read-only and offline zones survive the cycle",
			setup: func(t *testing.T, d *Device) {
				d.SetZoneState(1, ZoneReadOnly)
				d.SetZoneState(2, ZoneOffline)
			},
			cuts: map[int]int64{1: 0, 2: 0},
			verify: func(t *testing.T, d *Device) {
				if st := d.Zone(1).State; st != ZoneReadOnly {
					t.Errorf("zone1 state = %v, want read-only", st)
				}
				if st := d.Zone(2).State; st != ZoneOffline {
					t.Errorf("zone2 state = %v, want offline", st)
				}
			},
		},
		{
			name: "open zones close and the open count drops to zero",
			setup: func(t *testing.T, d *Device) {
				mustWrite(t, d, 0, pattern(testConfig(), 2, 1), 0)
				mustWrite(t, d, d.ZoneStart(1), pattern(testConfig(), 2, 2), 0)
				if n := d.OpenZoneCount(); n != 2 {
					t.Fatalf("pre-crash open zones = %d, want 2", n)
				}
			},
			cuts: map[int]int64{0: 2, 1: 2},
			verify: func(t *testing.T, d *Device) {
				if n := d.OpenZoneCount(); n != 0 {
					t.Errorf("open zones after cycle = %d, want 0", n)
				}
				for z := 0; z < 2; z++ {
					if st := d.Zone(z).State; st != ZoneClosed {
						t.Errorf("zone%d state = %v, want closed", z, st)
					}
				}
			},
		},
		{
			name: "mid-extent cut preserves the exact byte prefix",
			setup: func(t *testing.T, d *Device) {
				cfg := testConfig()
				segs := [][]byte{pattern(cfg, 3, 1), pattern(cfg, 3, 2), pattern(cfg, 2, 3)}
				if err := d.Writev(0, segs, 0).Wait(); err != nil {
					t.Fatal(err)
				}
			},
			cuts: map[int]int64{0: 5},
			verify: func(t *testing.T, d *Device) {
				cfg := testConfig()
				if wp := d.Zone(0).WP; wp != 5 {
					t.Fatalf("WP = %d, want 5", wp)
				}
				want := append(pattern(cfg, 3, 1), pattern(cfg, 3, 2)[:2*cfg.SectorSize]...)
				if got := mustRead(t, d, 0, 5); !bytes.Equal(got, want) {
					t.Error("surviving prefix differs from the written bytes")
				}
				// The zone must accept sequential writes exactly at the cut.
				mustWrite(t, d, 5, pattern(cfg, 1, 4), 0)
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run(t, testConfig(), func(c *vclock.Clock, d *Device) {
				tc.setup(t, d)
				d.PowerLossAt(tc.cuts)
				tc.verify(t, d)
			})
		})
	}
}
