package zns

import (
	"math/rand"
	"testing"
	"testing/quick"

	"raizn/internal/vclock"
)

// TestDeviceInvariantsQuick drives random operation sequences against one
// device and checks the DESIGN.md invariants after every step:
//
//   - the write pointer never decreases except across a reset;
//   - the persisted prefix never exceeds the write pointer;
//   - flushed data is never un-persisted by power loss;
//   - reads below the write pointer always succeed, reads above it
//     always fail (outside full zones).
func TestDeviceInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		cfg := testConfig()
		c := vclock.New()
		c.Run(func() {
			d := NewDevice(c, cfg)
			rng := rand.New(rand.NewSource(seed))
			type zstate struct{ wp, pwp int64 }
			prev := make([]zstate, cfg.NumZones)

			check := func() {
				for z := 0; z < cfg.NumZones; z++ {
					zd := d.Zone(z)
					wp := zd.WP - d.ZoneStart(z)
					pwp := zd.PersistedWP - d.ZoneStart(z)
					if pwp > wp {
						ok = false
					}
					if pwp < prev[z].pwp { // flushed data lost
						ok = false
					}
					prev[z] = zstate{wp: wp, pwp: pwp}
				}
			}

			for op := 0; op < 120 && ok; op++ {
				z := rng.Intn(cfg.NumZones)
				zd := d.Zone(z)
				wp := zd.WP - d.ZoneStart(z)
				switch rng.Intn(12) {
				case 0:
					d.ResetZone(z).Wait()
					prev[z] = zstate{}
				case 1:
					d.Flush().Wait()
				case 2:
					d.FinishZone(z).Wait()
				case 3:
					// Power loss: only unflushed data may vanish.
					d.PowerLoss(rng)
					for i := range prev {
						prev[i].wp = prev[i].pwp
					}
				case 4:
					// Read below WP must succeed.
					if wp > 0 {
						n := 1 + rng.Int63n(wp)
						buf := make([]byte, n*int64(cfg.SectorSize))
						if err := d.Read(d.ZoneStart(z), buf).Wait(); err != nil {
							ok = false
						}
					}
				case 5:
					// Read beyond WP must fail outside full zones.
					if zd.State != ZoneFull && wp < cfg.ZoneCap {
						buf := make([]byte, cfg.SectorSize)
						if err := d.Read(zd.WP, buf).Wait(); err == nil {
							ok = false
						}
					}
				default:
					n := 1 + rng.Int63n(8)
					if wp+n > cfg.ZoneCap {
						continue
					}
					flags := Flag(0)
					if rng.Intn(4) == 0 {
						flags = FUA
					}
					d.Write(zd.WP, make([]byte, n*int64(cfg.SectorSize)), flags).Wait()
				}
				check()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
