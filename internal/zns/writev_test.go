package zns

import (
	"bytes"
	"testing"
	"time"

	"raizn/internal/vclock"
)

func TestWritevPayloadEquivalence(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		segs := [][]byte{
			pattern(cfg, 2, 0x11),
			pattern(cfg, 3, 0x22),
			pattern(cfg, 1, 0x33),
		}
		if err := d.Writev(0, segs, 0).Wait(); err != nil {
			t.Fatalf("writev: %v", err)
		}
		want := bytes.Join(segs, nil)
		got := mustRead(t, d, 0, 6)
		if !bytes.Equal(got, want) {
			t.Fatalf("writev payload mismatch")
		}
		if wp := d.Zone(0).WP; wp != 6 {
			t.Fatalf("wp = %d, want 6", wp)
		}
		if n := d.WriteCommands(); n != 1 {
			t.Fatalf("WriteCommands = %d, want 1 (merged command)", n)
		}
	})
}

func TestWritevCostsOneCommandOverhead(t *testing.T) {
	cfg := testConfig()
	const nSegs = 4
	const segSectors = 2

	// Vectored write: one command for all segments.
	var tVec time.Duration
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		segs := make([][]byte, nSegs)
		for i := range segs {
			segs[i] = pattern(cfg, segSectors, byte(i))
		}
		start := c.Now()
		if err := d.Writev(0, segs, 0).Wait(); err != nil {
			t.Fatalf("writev: %v", err)
		}
		tVec = c.Now() - start
	})

	// One plain write of the combined length must cost exactly the same.
	var tFlat time.Duration
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		start := c.Now()
		mustWrite(t, d, 0, pattern(cfg, nSegs*segSectors, 0x7F), 0)
		tFlat = c.Now() - start
	})
	if tVec != tFlat {
		t.Fatalf("Writev took %v, a single Write of equal size %v; merged command must cost one transfer", tVec, tFlat)
	}

	// N separate sequential writes pay the per-command overhead and
	// completion latency N times instead of once.
	var tSplit time.Duration
	var xferGap time.Duration // transfer-time rounding: n small transfers vs one large
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		start := c.Now()
		for i := 0; i < nSegs; i++ {
			mustWrite(t, d, int64(i*segSectors), pattern(cfg, segSectors, byte(i)), 0)
		}
		tSplit = c.Now() - start
		segBytes := segSectors * cfg.SectorSize
		xferGap = time.Duration(nSegs)*d.xferTime(segBytes, cfg.WriteBandwidth) -
			d.xferTime(nSegs*segBytes, cfg.WriteBandwidth)
	})
	wantGap := time.Duration(nSegs-1)*(cfg.WriteOpOverhead+cfg.WriteLatency) + xferGap
	if got := tSplit - tVec; got != wantGap {
		t.Fatalf("split-vs-vectored gap = %v, want (n-1)*(overhead+latency) = %v", got, wantGap)
	}
}

func TestWritevValidation(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if err := d.Writev(0, nil, 0).Wait(); err != ErrUnaligned {
			t.Fatalf("empty segs: got %v, want ErrUnaligned", err)
		}
		bad := [][]byte{pattern(cfg, 1, 1), make([]byte, cfg.SectorSize/2)}
		if err := d.Writev(0, bad, 0).Wait(); err != ErrUnaligned {
			t.Fatalf("misaligned seg: got %v, want ErrUnaligned", err)
		}
		if err := d.Writev(1, [][]byte{pattern(cfg, 1, 1)}, 0).Wait(); err != ErrNotSequential {
			t.Fatalf("non-wp writev: got %v, want ErrNotSequential", err)
		}
		// A single segment delegates to Write and still counts once.
		if err := d.Writev(0, [][]byte{pattern(cfg, 2, 0x44)}, 0).Wait(); err != nil {
			t.Fatalf("single-seg writev: %v", err)
		}
		if n := d.WriteCommands(); n != 1 {
			t.Fatalf("WriteCommands = %d, want 1", n)
		}
	})
}

func TestWritevPowerLossSemantics(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		segs := [][]byte{pattern(cfg, 2, 0x55), pattern(cfg, 2, 0x66)}
		if err := d.Writev(0, segs, 0).Wait(); err != nil {
			t.Fatalf("writev: %v", err)
		}
		// Unflushed: the whole merged command reverts on power loss.
		d.PowerLossAt(nil)
		if wp := d.Zone(0).WP; wp != 0 {
			t.Fatalf("unflushed writev survived power loss, wp = %d", wp)
		}
		// FUA: persists.
		if err := d.Writev(0, segs, FUA).Wait(); err != nil {
			t.Fatalf("writev FUA: %v", err)
		}
		d.PowerLossAt(nil)
		if wp := d.Zone(0).WP; wp != 4 {
			t.Fatalf("FUA writev lost, wp = %d, want 4", wp)
		}
		if got, want := mustRead(t, d, 0, 4), bytes.Join(segs, nil); !bytes.Equal(got, want) {
			t.Fatalf("FUA writev payload mismatch after power loss")
		}
	})
}
