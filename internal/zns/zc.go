package zns

import (
	"errors"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// Zero-copy reads: instead of snapshotting the payload into a caller
// buffer at submit, the device hands out a subslice of the zone's
// backing array together with the zone's zc sequence number. The slice
// is a consistent view of the range as long as the sequence is
// unchanged; anything that mutates or frees written payload in place
// bumps it:
//
//   - zone reset (backing array detached),
//   - power loss / crash-clone cuts (tail zeroed in place),
//   - bit rot and CorruptSector (bytes flipped in place),
//   - ZRWA in-place overwrites.
//
// Ordinary writes only ever touch bytes at or beyond the write pointer,
// so views over written data stay intact across appends. A torn sequence
// never yields garbage memory — the old backing array is immutable once
// detached — it only means the view no longer reflects zone content, so
// callers re-read through the copying path.

// ErrZCUnavailable reports that a range cannot be served zero-copy
// (payload discarded or not materialized, or the range is not fully
// below the write pointer). Callers fall back to a copying read.
var ErrZCUnavailable = errors.New("zns: range not zero-copy readable")

// ReadZCSpan submits a zero-copy read of [sector, sector+nSectors):
// simulated cost (read-pipe occupancy, latency) is identical to Read,
// but the returned data aliases device memory instead of being copied.
// The view is pinned by (zone, seq): it reflects zone content only while
// ZCValid(zone, seq) holds. Latent media errors are delivered through
// the future exactly as for Read. When the range cannot be served
// zero-copy the error is ErrZCUnavailable and no pipe time is charged.
func (d *Device) ReadZCSpan(sp *obs.Span, sector, nSectors int64) (data []byte, zone int, seq uint64, fut *vclock.Future, err error) {
	d.mu.Lock()
	data, zone, seq, pio, err := d.readZCApplyLocked(sp, sector, nSectors)
	epoch := d.epoch
	d.mu.Unlock()
	if err != nil {
		return nil, 0, 0, d.failSpan(sp, err), err
	}
	fut = d.clk.NewFuture()
	d.schedule(sp, fut, pio.at, epoch, pio.err, nil)
	return data, zone, seq, fut, nil
}

// readZCApplyLocked is the submit half of ReadZCSpan; see readApplyLocked
// for the copying twin. Caller holds d.mu.
func (d *Device) readZCApplyLocked(sp *obs.Span, sector, nSectors int64) (data []byte, zone int, seq uint64, pio pendingIO, err error) {
	if d.failed {
		return nil, 0, 0, pendingIO{}, ErrDeviceFailed
	}
	z, off, err := d.checkSpan(sector, nSectors)
	if err != nil {
		return nil, 0, 0, pendingIO{}, err
	}
	zo := &d.zones[z]
	if zo.state == ZoneOffline {
		return nil, 0, 0, pendingIO{}, ErrZoneUnavailable
	}
	if off+nSectors > zo.wp && zo.state != ZoneFull {
		return nil, 0, 0, pendingIO{}, ErrReadBeyondWP
	}
	if d.cfg.DiscardData || zo.data == nil || off+nSectors > zo.wp {
		// Unmaterialized payloads and full-zone tails beyond the write
		// pointer (which read as zeroes) take the copying path.
		return nil, 0, 0, pendingIO{}, ErrZCUnavailable
	}

	ss := int64(d.cfg.SectorSize)
	d.hostReadBytes += nSectors * ss
	rerr := d.readFaultLocked(sector, nSectors)

	now := d.clk.Now()
	occ := d.slowLocked(d.cfg.ReadOpOverhead + d.xferTime(int(nSectors)*int(ss), d.cfg.ReadBandwidth))
	markPipe(sp, d.readBusy, now)
	media := reservePipe(&d.readBusy, now, occ)
	sp.MarkAt(obs.PhaseMedia, media)
	done := media + d.cfg.ReadLatency
	return zo.data[off*ss : (off+nSectors)*ss], z, zo.zcSeq, pendingIO{at: done, err: rerr, fuaZ: -1}, nil
}

// ZCValid reports whether a zero-copy view pinned at (zone, seq) still
// reflects the zone's content.
func (d *Device) ZCValid(z int, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.failed && z >= 0 && z < len(d.zones) && d.zones[z].zcSeq == seq
}

// ZCSeq returns zone z's current zc sequence.
func (d *Device) ZCSeq(z int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if z < 0 || z >= len(d.zones) {
		return 0
	}
	return d.zones[z].zcSeq
}
