// Package zns simulates an NVMe Zoned Namespace SSD.
//
// The simulator reproduces the ZNS semantics RAIZN depends on — the zone
// state machine, sequential-write-only zones, write pointers, zone append,
// reset/finish, open/active zone limits, and a volatile write cache with
// flush/FUA prefix persistence — plus a bandwidth/latency performance model
// so IO completes in virtual time, and failure injection (device death,
// power loss with partial persistence) for crash-consistency testing.
//
// All IO methods are asynchronous: they validate and apply the state
// transition synchronously (the device serializes command submission, as
// the NVMe queue pair does) and return a vclock.Future that completes when
// the simulated transfer finishes.
package zns

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"raizn/internal/obs"
	"raizn/internal/vclock"
)

// ZoneState is the state of a zone per the ZNS state machine (NVMe ZNS
// Command Set spec §2.1). Implicitly and explicitly opened zones are
// merged into Open; the distinction does not affect any behaviour RAIZN
// relies on.
type ZoneState int

const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneClosed
	ZoneFull
	ZoneReadOnly
	ZoneOffline
)

func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "empty"
	case ZoneOpen:
		return "open"
	case ZoneClosed:
		return "closed"
	case ZoneFull:
		return "full"
	case ZoneReadOnly:
		return "read-only"
	case ZoneOffline:
		return "offline"
	default:
		return fmt.Sprintf("ZoneState(%d)", int(s))
	}
}

// Flag carries per-IO cache-control semantics, mirroring the kernel block
// layer's REQ_FUA / REQ_PREFLUSH.
type Flag uint8

const (
	// FUA forces the written data (and, per the ZNS sequential
	// guarantee, everything before it in the same zone) to media before
	// the write completes.
	FUA Flag = 1 << iota
	// Preflush flushes the device's volatile cache before the write is
	// executed.
	Preflush
)

// Errors returned by device operations (as future completions).
var (
	ErrNotSequential   = errors.New("zns: write not at zone write pointer")
	ErrZoneBoundary    = errors.New("zns: IO crosses a zone boundary")
	ErrZoneFull        = errors.New("zns: zone is full")
	ErrTooManyOpen     = errors.New("zns: max open zones exceeded")
	ErrTooManyActive   = errors.New("zns: max active zones exceeded")
	ErrDeviceFailed    = errors.New("zns: device failed")
	ErrReadBeyondWP    = errors.New("zns: read beyond write pointer")
	ErrZoneUnavailable = errors.New("zns: zone is read-only or offline")
	ErrPowerLoss       = errors.New("zns: IO lost to power failure")
	ErrOutOfRange      = errors.New("zns: address out of range")
	ErrUnaligned       = errors.New("zns: IO not sector aligned")
	// ErrReadMedium is an unrecoverable (latent) media error on a read:
	// the sector is unreadable but the device is otherwise healthy,
	// unlike ErrDeviceFailed.
	ErrReadMedium = errors.New("zns: unrecovered read error (latent sector)")
	// ErrNoData rejects payload-dependent fault injection on a device
	// configured with DiscardData.
	ErrNoData = errors.New("zns: device discards payload data")
)

// Config describes a simulated ZNS device. Capacities are expressed in
// sectors; a sector is the logical block size (4 KiB by default, matching
// the paper's devices).
type Config struct {
	SectorSize int   // bytes per logical block
	NumZones   int   // zones in the namespace
	ZoneSize   int64 // address-space stride of a zone, in sectors (power of two on real devices)
	ZoneCap    int64 // writable sectors per zone (<= ZoneSize)

	MaxOpenZones   int // simultaneous open zones (14 on the paper's ZN540s)
	MaxActiveZones int // simultaneous open+closed zones (0 = same as MaxOpenZones)

	// AtomicWriteSectors is the device-atomic write granularity: on power
	// loss, unflushed data survives only in multiples of this many
	// sectors (paper §3, "torn writes").
	AtomicWriteSectors int64

	// Performance model. A read and a write pipe each serialize their
	// transfers at the configured bandwidth; every op additionally
	// occupies its pipe for the per-op overhead (this bounds IOPS) and
	// completes an extra fixed latency after leaving the pipe.
	WriteBandwidth  float64       // bytes/second
	ReadBandwidth   float64       // bytes/second
	WriteOpOverhead time.Duration // pipe occupancy per write op
	ReadOpOverhead  time.Duration // pipe occupancy per read op
	WriteLatency    time.Duration // post-pipe completion delay
	ReadLatency     time.Duration // post-pipe completion delay
	ResetLatency    time.Duration // zone reset service time
	FinishLatency   time.Duration // zone finish service time
	FlushLatency    time.Duration // cache flush service time

	// ZRWASectors enables a Zone Random Write Area of this many sectors
	// behind each zone's write pointer (0 = unsupported, as on the
	// paper's devices). See WriteZRWA.
	ZRWASectors int64

	// MetaBytes enables per-block logical metadata of this many bytes
	// (NVMe metadata/PI; 0 = unsupported). See AppendMeta.
	MetaBytes int

	// DiscardData drops write payloads (reads return zeroes). Used by
	// large benchmarks where only timing and zone metadata matter.
	DiscardData bool

	// Fault-injection model (faults.go). FaultSeed seeds the dedicated
	// fault RNG so injected campaigns replay bit-identically.
	// ReadErrorRate is the per-sector probability that a read grows a
	// latent (persistent) unreadable sector; BitRotRate is the
	// per-sector probability of silent bit-rot applied when data
	// reaches media. Both default to 0 (no spontaneous faults).
	FaultSeed     int64
	ReadErrorRate float64
	BitRotRate    float64
}

// DefaultConfig returns a scaled-down model of the paper's WD Ultrastar DC
// ZN540: 4 KiB sectors, 1052 MiB/s write and 3265 MiB/s read bandwidth, a
// 14-zone open limit, and (by default) 64 zones of 4 MiB capacity so whole
// experiments fit in memory.
func DefaultConfig() Config {
	return Config{
		SectorSize:         4096,
		NumZones:           64,
		ZoneSize:           1280, // 5 MiB stride
		ZoneCap:            1024, // 4 MiB writable, mirroring cap < size on the ZN540
		MaxOpenZones:       14,
		MaxActiveZones:     28,
		AtomicWriteSectors: 1,
		WriteBandwidth:     1052 * (1 << 20),
		ReadBandwidth:      3265 * (1 << 20),
		WriteOpOverhead:    2 * time.Microsecond,
		ReadOpOverhead:     1 * time.Microsecond,
		WriteLatency:       12 * time.Microsecond,
		ReadLatency:        65 * time.Microsecond,
		ResetLatency:       2 * time.Millisecond,
		FinishLatency:      1 * time.Millisecond,
		FlushLatency:       300 * time.Microsecond,
	}
}

func (c *Config) validate() error {
	switch {
	case c.SectorSize <= 0:
		return errors.New("zns: SectorSize must be positive")
	case c.NumZones <= 0:
		return errors.New("zns: NumZones must be positive")
	case c.ZoneSize <= 0 || c.ZoneCap <= 0 || c.ZoneCap > c.ZoneSize:
		return errors.New("zns: need 0 < ZoneCap <= ZoneSize")
	case c.MaxOpenZones <= 0:
		return errors.New("zns: MaxOpenZones must be positive")
	case c.WriteBandwidth <= 0 || c.ReadBandwidth <= 0:
		return errors.New("zns: bandwidths must be positive")
	case c.ReadErrorRate < 0 || c.ReadErrorRate > 1 || c.BitRotRate < 0 || c.BitRotRate > 1:
		return errors.New("zns: fault rates must be in [0, 1]")
	}
	if c.MaxActiveZones == 0 {
		c.MaxActiveZones = c.MaxOpenZones
	}
	if c.MaxActiveZones < c.MaxOpenZones {
		return errors.New("zns: MaxActiveZones < MaxOpenZones")
	}
	if c.AtomicWriteSectors <= 0 {
		c.AtomicWriteSectors = 1
	}
	return nil
}

// extent records one unflushed write for partial-persistence power loss.
type extent struct {
	start, end int64 // zone-relative sectors, [start, end)
}

type zone struct {
	state     ZoneState
	wp        int64 // zone-relative next writable sector
	pwp       int64 // zone-relative persisted prefix (pwp <= wp)
	finished  bool  // zone was made full by an explicit (durable) finish
	data      []byte
	unflushed []extent // writes in (pwp, wp], in submit order
	zcSeq     uint64   // bumped whenever payload below wp mutates or is freed

	// Flash-program accounting (see programLocked). prog is the zone-
	// relative sector up to which data has been programmed to NAND; zrwa
	// marks a zone that has seen a WriteZRWA since its last reset, whose
	// tail therefore lingers in the device's ZRWA buffer until it slides
	// out of the window. Pure accounting: durability is governed solely by
	// pwp/unflushed.
	prog int64
	zrwa bool
}

// Device is a simulated ZNS SSD. All exported methods are safe for
// concurrent use by simulated goroutines.
type Device struct {
	cfg Config
	clk *vclock.Clock

	mu      sync.Mutex
	zones   []zone
	nOpen   int
	nActive int
	failed  bool
	epoch   uint64 // bumped on power loss; stale completions are voided

	writeBusy time.Duration // write pipe busy-until (virtual time)
	readBusy  time.Duration // read pipe busy-until

	slowFactor float64 // injected service-time multiplier (faults.go); <=1 means none

	meta map[int64][]byte // per-sector logical metadata (ext.go)

	// Fault injection (faults.go).
	faultRNG         *rand.Rand     // seeded from cfg.FaultSeed, lazily built
	latentErrs       map[int64]bool // absolute sectors with latent read errors
	injectedReadErrs int64          // sectors marked latent (explicit + rate)
	injectedRot      int64          // sectors hit by bit-rot (explicit + rate)
	readMediumErrs   int64          // reads completed with ErrReadMedium

	// Lifetime counters, for write-amplification accounting in tests
	// and the experiment harness.
	hostWriteBytes int64
	hostReadBytes  int64
	writeCmds      int64 // write commands accepted (a Writev counts once)
	flushCount     int64
	resetCount     int64

	// flashProgramBytes counts bytes committed to NAND (programLocked): the
	// flash-write-amplification denominator's counterpart. Host bytes that
	// only ever lived in a zone's ZRWA before being overwritten or the zone
	// reset are never programmed and never counted. Cumulative; survives
	// zone resets and power cuts.
	flashProgramBytes int64

	// Event journal (AttachJournal); zone lifecycle transitions record
	// into it under jslot. Nil until attached; Record is nil-safe and
	// free when disabled, so the hot path never branches on it.
	jrn   *obs.Journal
	jslot int

	// Crash-point hook (AttachHook); fired once per accepted command and
	// zone operation, outside d.mu. Nil until attached.
	hook  obs.Hook
	hslot int
}

// NewDevice creates a device with every zone empty. It panics on invalid
// configuration (a construction-time programming error).
func NewDevice(clk *vclock.Clock, cfg Config) *Device {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Device{
		cfg:   cfg,
		clk:   clk,
		zones: make([]zone, cfg.NumZones),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Clock returns the virtual clock the device schedules on.
func (d *Device) Clock() *vclock.Clock { return d.clk }

// NumSectors returns the size of the device address space in sectors
// (NumZones * ZoneSize; the tail of each zone beyond ZoneCap is a gap).
func (d *Device) NumSectors() int64 {
	return int64(d.cfg.NumZones) * d.cfg.ZoneSize
}

// ZoneOf returns the zone index containing the absolute sector.
func (d *Device) ZoneOf(sector int64) int {
	return int(sector / d.cfg.ZoneSize)
}

// ZoneStart returns the first absolute sector of zone z.
func (d *Device) ZoneStart(z int) int64 {
	return int64(z) * d.cfg.ZoneSize
}

// ZoneDesc is a report-zones style descriptor.
type ZoneDesc struct {
	Index int
	State ZoneState
	// WP is the absolute sector of the write pointer. For full zones it
	// equals ZoneStart+ZoneCap.
	WP int64
	// PersistedWP is the absolute sector up to which data would survive
	// an immediate power loss. Real devices do not expose this; it is
	// simulator-only introspection used by tests.
	PersistedWP int64
}

// Zone returns the descriptor of zone z.
func (d *Device) Zone(z int) ZoneDesc {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.zoneDescLocked(z)
}

func (d *Device) zoneDescLocked(z int) ZoneDesc {
	zo := &d.zones[z]
	return ZoneDesc{
		Index:       z,
		State:       zo.state,
		WP:          d.ZoneStart(z) + zo.wp,
		PersistedWP: d.ZoneStart(z) + zo.pwp,
	}
}

// ReportZones returns descriptors for all zones, in index order.
func (d *Device) ReportZones() []ZoneDesc {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ZoneDesc, len(d.zones))
	for i := range d.zones {
		out[i] = d.zoneDescLocked(i)
	}
	return out
}

// OpenZoneCount returns the number of zones currently in the open state.
func (d *Device) OpenZoneCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nOpen
}

// Counters returns lifetime host IO counters.
func (d *Device) Counters() (writeBytes, readBytes, flushes, resets int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hostWriteBytes, d.hostReadBytes, d.flushCount, d.resetCount
}

// WriteCommands returns the number of write commands the device has
// accepted. A gathered Writev counts as one command regardless of how
// many segments it carries, so hosts can verify sub-IO coalescing.
func (d *Device) WriteCommands() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeCmds
}

// FlashProgramBytes returns the cumulative bytes programmed to NAND. For
// zones written only sequentially this equals the host bytes written to
// them; for zones written through the ZRWA, bytes are programmed lazily
// when they slide out of the window (or the zone fills/finishes), so
// in-window overwrites and resets of in-window data never reach flash.
func (d *Device) FlashProgramBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flashProgramBytes
}

// programLocked advances zone z's programmed pointer after its write
// pointer moved and charges flashProgramBytes. A zone untouched by ZRWA
// programs everything up to wp immediately; a ZRWA-touched zone keeps the
// trailing ZRWASectors in the device buffer (implicit-commit model: data
// is programmed only when the window slides past it), except that a full
// or finished zone commits its whole contents. Caller holds d.mu.
func (d *Device) programLocked(z int) {
	zo := &d.zones[z]
	target := zo.wp
	if zo.zrwa && zo.state != ZoneFull && !zo.finished {
		target = zo.wp - d.cfg.ZRWASectors
	}
	if target > zo.prog {
		d.flashProgramBytes += (target - zo.prog) * int64(d.cfg.SectorSize)
		zo.prog = target
	}
}

// jStateLocked journals zone z's new lifecycle state together with the
// open/active occupancy after the transition. Caller holds d.mu.
func (d *Device) jStateLocked(z int) {
	zo := &d.zones[z]
	d.jrn.Record(obs.EvZoneState, d.jslot, z,
		int64(zo.state), zo.wp, int64(d.nOpen), int64(d.nActive))
}

// transitionToOpenLocked moves zone z toward the open state, enforcing the
// open/active limits.
func (d *Device) transitionToOpenLocked(z int) error {
	zo := &d.zones[z]
	switch zo.state {
	case ZoneOpen:
		return nil
	case ZoneEmpty:
		if d.nOpen >= d.cfg.MaxOpenZones {
			return ErrTooManyOpen
		}
		if d.nActive >= d.cfg.MaxActiveZones {
			return ErrTooManyActive
		}
		zo.state = ZoneOpen
		d.nOpen++
		d.nActive++
		d.jStateLocked(z)
		return nil
	case ZoneClosed:
		if d.nOpen >= d.cfg.MaxOpenZones {
			return ErrTooManyOpen
		}
		zo.state = ZoneOpen
		d.nOpen++
		d.jStateLocked(z)
		return nil
	case ZoneFull:
		return ErrZoneFull
	default:
		return ErrZoneUnavailable
	}
}

// finalizeFullLocked transitions an open zone whose wp hit cap to full.
func (d *Device) finalizeFullLocked(z int) {
	zo := &d.zones[z]
	if zo.state == ZoneOpen && zo.wp >= d.cfg.ZoneCap {
		zo.state = ZoneFull
		d.nOpen--
		d.nActive--
		d.jStateLocked(z)
	}
}

// CloseZone explicitly transitions an open zone to closed (freeing an open
// slot while keeping it active). Closing an empty or closed zone is a
// no-op, matching the NVMe spec's handling.
func (d *Device) CloseZone(z int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if z < 0 || z >= len(d.zones) {
		return ErrOutOfRange
	}
	zo := &d.zones[z]
	if zo.state == ZoneOpen {
		// A zone with no written data returns to empty on close per
		// spec; one with data becomes closed.
		if zo.wp == 0 {
			zo.state = ZoneEmpty
			d.nActive--
		} else {
			zo.state = ZoneClosed
		}
		d.nOpen--
		d.jStateLocked(z)
	}
	return nil
}

// OpenZone explicitly opens a zone, reserving an open slot before any
// write arrives.
func (d *Device) OpenZone(z int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if z < 0 || z >= len(d.zones) {
		return ErrOutOfRange
	}
	return d.transitionToOpenLocked(z)
}

// SetSlowdown injects a service-time multiplier: every subsequent
// command occupies its pipe factor× longer, modelling a device stalled
// by internal housekeeping (GC, wear levelling, thermal throttling).
// factor <= 1 restores normal speed. Used to provoke the slow-IO
// watchdog deterministically.
func (d *Device) SetSlowdown(factor float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.slowFactor = factor
}

// SetZoneState force-sets a zone's failure state (read-only / offline) for
// fault-injection tests. It is not part of the device's normal command
// set.
func (d *Device) SetZoneState(z int, s ZoneState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	zo := &d.zones[z]
	if zo.state == ZoneOpen {
		d.nOpen--
		d.nActive--
	} else if zo.state == ZoneClosed {
		d.nActive--
	}
	zo.state = s
	d.jStateLocked(z)
}
