package zns

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"raizn/internal/vclock"
)

// testConfig returns a small, fast device configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumZones = 8
	cfg.ZoneSize = 64
	cfg.ZoneCap = 48
	cfg.MaxOpenZones = 3
	cfg.MaxActiveZones = 5
	return cfg
}

// run executes fn against a fresh device inside a simulation.
func run(t *testing.T, cfg Config, fn func(c *vclock.Clock, d *Device)) {
	t.Helper()
	c := vclock.New()
	d := NewDevice(c, cfg)
	c.Run(func() { fn(c, d) })
}

// pattern returns n sectors of data filled with deterministic bytes
// derived from tag.
func pattern(cfg Config, nSectors int, tag byte) []byte {
	b := make([]byte, nSectors*cfg.SectorSize)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

func mustWrite(t *testing.T, d *Device, sector int64, data []byte, flags Flag) {
	t.Helper()
	if err := d.Write(sector, data, flags).Wait(); err != nil {
		t.Fatalf("write at %d: %v", sector, err)
	}
}

func mustRead(t *testing.T, d *Device, sector int64, n int) []byte {
	t.Helper()
	buf := make([]byte, n*d.Config().SectorSize)
	if err := d.Read(sector, buf).Wait(); err != nil {
		t.Fatalf("read at %d: %v", sector, err)
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		data := pattern(cfg, 4, 0xAB)
		mustWrite(t, d, 0, data, 0)
		got := mustRead(t, d, 0, 4)
		if !bytes.Equal(got, data) {
			t.Error("read data does not match written data")
		}
	})
}

func TestSequentialWriteConstraint(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 1), 0)
		// Skipping ahead violates the write pointer.
		if err := d.Write(4, pattern(cfg, 1, 2), 0).Wait(); err != ErrNotSequential {
			t.Errorf("gap write error = %v, want ErrNotSequential", err)
		}
		// Rewinding also violates it.
		if err := d.Write(0, pattern(cfg, 1, 2), 0).Wait(); err != ErrNotSequential {
			t.Errorf("rewind write error = %v, want ErrNotSequential", err)
		}
		// The write pointer itself is fine.
		mustWrite(t, d, 2, pattern(cfg, 1, 3), 0)
	})
}

func TestWritePointerAdvancesAtSubmit(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		// Submit two back-to-back writes without waiting: the second
		// must be accepted because the WP advanced at submit.
		f1 := d.Write(0, pattern(cfg, 2, 1), 0)
		f2 := d.Write(2, pattern(cfg, 2, 2), 0)
		if err := vclock.WaitAll(f1, f2); err != nil {
			t.Fatalf("pipelined writes: %v", err)
		}
	})
}

func TestZoneBoundaryViolations(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		// Fill to one sector below cap, then try to write 2 sectors.
		mustWrite(t, d, 0, pattern(cfg, int(cfg.ZoneCap)-1, 1), 0)
		if err := d.Write(cfg.ZoneCap-1, pattern(cfg, 2, 2), 0).Wait(); err != ErrOutOfRange {
			t.Errorf("cap overflow error = %v, want ErrOutOfRange", err)
		}
		// Crossing from the gap into the next zone.
		if err := d.Write(cfg.ZoneSize-1, pattern(cfg, 2, 2), 0).Wait(); err != ErrZoneBoundary {
			t.Errorf("boundary cross error = %v, want ErrZoneBoundary", err)
		}
		// Entirely outside the device.
		if err := d.Write(d.NumSectors(), pattern(cfg, 1, 2), 0).Wait(); err != ErrOutOfRange {
			t.Errorf("out of range error = %v, want ErrOutOfRange", err)
		}
	})
}

func TestUnalignedIO(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if err := d.Write(0, make([]byte, 100), 0).Wait(); err != ErrUnaligned {
			t.Errorf("unaligned write error = %v", err)
		}
		if err := d.Write(0, nil, 0).Wait(); err != ErrUnaligned {
			t.Errorf("empty write error = %v", err)
		}
		if err := d.Read(0, make([]byte, 1)).Wait(); err != ErrUnaligned {
			t.Errorf("unaligned read error = %v", err)
		}
	})
}

func TestZoneStateMachine(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if st := d.Zone(0).State; st != ZoneEmpty {
			t.Errorf("initial state = %v, want empty", st)
		}
		mustWrite(t, d, 0, pattern(cfg, 1, 1), 0)
		if st := d.Zone(0).State; st != ZoneOpen {
			t.Errorf("after write state = %v, want open", st)
		}
		if err := d.CloseZone(0); err != nil {
			t.Fatal(err)
		}
		if st := d.Zone(0).State; st != ZoneClosed {
			t.Errorf("after close state = %v, want closed", st)
		}
		// Writing reopens.
		mustWrite(t, d, 1, pattern(cfg, int(cfg.ZoneCap)-1, 2), 0)
		if st := d.Zone(0).State; st != ZoneFull {
			t.Errorf("after filling state = %v, want full", st)
		}
		if err := d.ResetZone(0).Wait(); err != nil {
			t.Fatal(err)
		}
		if st := d.Zone(0).State; st != ZoneEmpty {
			t.Errorf("after reset state = %v, want empty", st)
		}
		if wp := d.Zone(0).WP; wp != 0 {
			t.Errorf("after reset WP = %d, want 0", wp)
		}
	})
}

func TestFullZoneRejectsWrites(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, int(cfg.ZoneCap), 1), 0)
		if err := d.Write(cfg.ZoneCap, pattern(cfg, 1, 2), 0).Wait(); err == nil {
			t.Error("write into the cap..size gap should fail")
		}
	})
}

func TestMaxOpenZones(t *testing.T) {
	cfg := testConfig() // MaxOpenZones = 3
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		for z := 0; z < 3; z++ {
			mustWrite(t, d, d.ZoneStart(z), pattern(cfg, 1, byte(z)), 0)
		}
		if err := d.Write(d.ZoneStart(3), pattern(cfg, 1, 9), 0).Wait(); err != ErrTooManyOpen {
			t.Errorf("4th open error = %v, want ErrTooManyOpen", err)
		}
		// Closing one frees a slot.
		if err := d.CloseZone(0); err != nil {
			t.Fatal(err)
		}
		mustWrite(t, d, d.ZoneStart(3), pattern(cfg, 1, 9), 0)
		if n := d.OpenZoneCount(); n != 3 {
			t.Errorf("open count = %d, want 3", n)
		}
	})
}

func TestMaxActiveZones(t *testing.T) {
	cfg := testConfig() // MaxActive = 5
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		for z := 0; z < 5; z++ {
			mustWrite(t, d, d.ZoneStart(z), pattern(cfg, 1, byte(z)), 0)
			if err := d.CloseZone(z); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Write(d.ZoneStart(5), pattern(cfg, 1, 9), 0).Wait(); err != ErrTooManyActive {
			t.Errorf("6th active error = %v, want ErrTooManyActive", err)
		}
		// Filling one zone to full frees an active slot.
		z0 := d.Zone(0)
		rest := int(cfg.ZoneCap - (z0.WP - d.ZoneStart(0)))
		mustWrite(t, d, z0.WP, pattern(cfg, rest, 1), 0)
		mustWrite(t, d, d.ZoneStart(5), pattern(cfg, 1, 9), 0)
	})
}

func TestZoneAppend(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		s1, f1 := d.Append(2, pattern(cfg, 2, 1), 0)
		s2, f2 := d.Append(2, pattern(cfg, 3, 2), 0)
		if err := vclock.WaitAll(f1, f2); err != nil {
			t.Fatal(err)
		}
		if s1 != d.ZoneStart(2) || s2 != d.ZoneStart(2)+2 {
			t.Errorf("append sectors = %d, %d", s1, s2)
		}
		got := mustRead(t, d, s2, 3)
		if !bytes.Equal(got, pattern(cfg, 3, 2)) {
			t.Error("appended data mismatch")
		}
	})
}

func TestReadBeyondWP(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 1), 0)
		buf := make([]byte, cfg.SectorSize)
		if err := d.Read(2, buf).Wait(); err != ErrReadBeyondWP {
			t.Errorf("read beyond WP error = %v", err)
		}
	})
}

func TestFinishZoneReadsZeroes(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		data := pattern(cfg, 2, 7)
		mustWrite(t, d, 0, data, 0)
		if err := d.FinishZone(0).Wait(); err != nil {
			t.Fatal(err)
		}
		if st := d.Zone(0).State; st != ZoneFull {
			t.Errorf("finished state = %v, want full", st)
		}
		got := mustRead(t, d, 0, 4)
		if !bytes.Equal(got[:2*cfg.SectorSize], data) {
			t.Error("written prefix mismatch after finish")
		}
		if !bytes.Equal(got[2*cfg.SectorSize:], make([]byte, 2*cfg.SectorSize)) {
			t.Error("unwritten tail of finished zone should read zeroes")
		}
		// Finished zones reject writes.
		if err := d.Write(2, pattern(cfg, 1, 1), 0).Wait(); err != ErrZoneFull {
			t.Errorf("write to finished zone error = %v", err)
		}
	})
}

func TestPowerLossDropsUnflushedData(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 4, 1), 0)
		if err := d.Flush().Wait(); err != nil {
			t.Fatal(err)
		}
		mustWrite(t, d, 4, pattern(cfg, 4, 2), 0) // unflushed

		d.PowerLoss(nil) // pessimistic: keep only flushed data
		zd := d.Zone(0)
		if zd.WP != 4 {
			t.Errorf("post-loss WP = %d, want 4", zd.WP)
		}
		if zd.State != ZoneClosed {
			t.Errorf("post-loss state = %v, want closed", zd.State)
		}
		got := mustRead(t, d, 0, 4)
		if !bytes.Equal(got, pattern(cfg, 4, 1)) {
			t.Error("flushed data corrupted by power loss")
		}
	})
}

func TestPowerLossPrefixProperty(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 20; seed++ {
		run(t, cfg, func(c *vclock.Clock, d *Device) {
			mustWrite(t, d, 0, pattern(cfg, 3, 1), 0)
			if err := d.Flush().Wait(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				mustWrite(t, d, int64(3+i*2), pattern(cfg, 2, byte(2+i)), 0)
			}
			d.PowerLoss(rand.New(rand.NewSource(seed)))
			zd := d.Zone(0)
			if zd.WP < 3 {
				t.Errorf("seed %d: flushed prefix lost (WP=%d)", seed, zd.WP)
			}
			if zd.WP > 13 {
				t.Errorf("seed %d: WP=%d beyond written data", seed, zd.WP)
			}
			// Surviving data must be intact.
			if zd.WP > 0 {
				got := mustRead(t, d, 0, int(zd.WP))
				want := pattern(cfg, 3, 1)
				for i := 0; i < 5; i++ {
					want = append(want, pattern(cfg, 2, byte(2+i))...)
				}
				if !bytes.Equal(got, want[:len(got)]) {
					t.Errorf("seed %d: surviving prefix corrupted", seed)
				}
			}
		})
	}
}

func TestPowerLossAtDeterministic(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 8, 1), 0)
		mustWrite(t, d, d.ZoneStart(1), pattern(cfg, 8, 2), 0)
		d.PowerLossAt(map[int]int64{0: 5, 1: 0})
		if wp := d.Zone(0).WP; wp != 5 {
			t.Errorf("zone0 WP = %d, want 5", wp)
		}
		if st := d.Zone(1).State; st != ZoneEmpty {
			t.Errorf("zone1 state = %v, want empty", st)
		}
	})
}

func TestPowerLossAtClampsToFlushed(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 4, 1), 0)
		if err := d.Flush().Wait(); err != nil {
			t.Fatal(err)
		}
		// Requesting a cut below the flushed prefix must be clamped up.
		d.PowerLossAt(map[int]int64{0: 1})
		if wp := d.Zone(0).WP; wp != 4 {
			t.Errorf("WP = %d, want flushed 4", wp)
		}
	})
}

func TestFUAWritePersists(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 1), 0)   // volatile
		mustWrite(t, d, 2, pattern(cfg, 2, 2), FUA) // persists prefix too
		d.PowerLoss(nil)
		if wp := d.Zone(0).WP; wp != 4 {
			t.Errorf("WP after FUA + power loss = %d, want 4", wp)
		}
	})
}

func TestPreflushPersistsOtherZones(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, d.ZoneStart(1), pattern(cfg, 3, 1), 0) // volatile, other zone
		mustWrite(t, d, 0, pattern(cfg, 1, 2), Preflush)       // flushes zone 1's data
		d.PowerLoss(nil)
		if wp := d.Zone(1).WP; wp != d.ZoneStart(1)+3 {
			t.Errorf("zone1 WP = %d, want %d", wp, d.ZoneStart(1)+3)
		}
		// The preflush write itself was NOT persisted (no FUA).
		if wp := d.Zone(0).WP; wp != 0 {
			t.Errorf("zone0 WP = %d, want 0 (write itself volatile)", wp)
		}
	})
}

func TestFinishedZoneSurvivesPowerLoss(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 9), 0)
		if err := d.FinishZone(0).Wait(); err != nil {
			t.Fatal(err)
		}
		d.PowerLoss(nil)
		if st := d.Zone(0).State; st != ZoneFull {
			t.Errorf("finished zone state after power loss = %v, want full", st)
		}
		got := mustRead(t, d, 0, 2)
		if !bytes.Equal(got, pattern(cfg, 2, 9)) {
			t.Error("finished zone data lost")
		}
	})
}

func TestInflightIOCompletesWithPowerLoss(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		fut := d.Write(0, pattern(cfg, 4, 1), 0)
		d.PowerLoss(nil) // before the write's completion event fires
		if err := fut.Wait(); err != ErrPowerLoss {
			t.Errorf("in-flight write error = %v, want ErrPowerLoss", err)
		}
	})
}

func TestDeviceFail(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 1, 1), 0)
		d.Fail()
		if !d.Failed() {
			t.Error("Failed() = false")
		}
		if err := d.Write(1, pattern(cfg, 1, 1), 0).Wait(); err != ErrDeviceFailed {
			t.Errorf("write error = %v", err)
		}
		if err := d.Read(0, make([]byte, cfg.SectorSize)).Wait(); err != ErrDeviceFailed {
			t.Errorf("read error = %v", err)
		}
		if err := d.Flush().Wait(); err != ErrDeviceFailed {
			t.Errorf("flush error = %v", err)
		}
		if err := d.ResetZone(0).Wait(); err != ErrDeviceFailed {
			t.Errorf("reset error = %v", err)
		}
	})
}

func TestOfflineZone(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		d.SetZoneState(1, ZoneOffline)
		if err := d.Write(d.ZoneStart(1), pattern(cfg, 1, 1), 0).Wait(); err != ErrZoneUnavailable {
			t.Errorf("write error = %v", err)
		}
		if err := d.Read(d.ZoneStart(1), make([]byte, cfg.SectorSize)).Wait(); err != ErrZoneUnavailable {
			t.Errorf("read error = %v", err)
		}
		if err := d.ResetZone(1).Wait(); err != ErrZoneUnavailable {
			t.Errorf("reset error = %v", err)
		}
	})
}

func TestReadOnlyZoneAllowsReads(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 1), 0)
		d.SetZoneState(0, ZoneReadOnly)
		got := mustRead(t, d, 0, 2)
		if !bytes.Equal(got, pattern(cfg, 2, 1)) {
			t.Error("read-only zone data mismatch")
		}
		if err := d.Write(2, pattern(cfg, 1, 1), 0).Wait(); err != ErrZoneUnavailable {
			t.Errorf("write error = %v", err)
		}
	})
}

func TestWriteLatencyModel(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		start := c.Now()
		mustWrite(t, d, 0, pattern(cfg, 1, 1), 0)
		elapsed := c.Now() - start
		xfer := time.Duration(float64(cfg.SectorSize) / cfg.WriteBandwidth * float64(time.Second))
		want := cfg.WriteOpOverhead + xfer + cfg.WriteLatency
		if elapsed != want {
			t.Errorf("single write latency = %v, want %v", elapsed, want)
		}
	})
}

func TestBandwidthSerialization(t *testing.T) {
	cfg := testConfig()
	cfg.ZoneCap = 48
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		// Submit 16 writes back to back; total time must be at least
		// total bytes / bandwidth (the pipe serializes transfers).
		const n = 16
		futs := make([]*vclock.Future, n)
		for i := 0; i < n; i++ {
			futs[i] = d.Write(int64(i*2), pattern(cfg, 2, byte(i)), 0)
		}
		start := c.Now()
		if err := vclock.WaitAll(futs...); err != nil {
			t.Fatal(err)
		}
		elapsed := c.Now() - start
		bytesTotal := n * 2 * cfg.SectorSize
		minTime := time.Duration(float64(bytesTotal) / cfg.WriteBandwidth * float64(time.Second))
		if elapsed < minTime {
			t.Errorf("elapsed %v < serialized minimum %v", elapsed, minTime)
		}
	})
}

func TestReadWritePipesIndependent(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 8, 1), 0)
		// A big write queue should not delay reads.
		var wfuts []*vclock.Future
		for i := 0; i < 8; i++ {
			wfuts = append(wfuts, d.Write(int64(8+i*4), pattern(cfg, 4, 2), 0))
		}
		start := c.Now()
		buf := make([]byte, cfg.SectorSize)
		if err := d.Read(0, buf).Wait(); err != nil {
			t.Fatal(err)
		}
		readTime := c.Now() - start
		xfer := time.Duration(float64(cfg.SectorSize) / cfg.ReadBandwidth * float64(time.Second))
		want := cfg.ReadOpOverhead + xfer + cfg.ReadLatency
		if readTime != want {
			t.Errorf("read under write load took %v, want %v", readTime, want)
		}
		vclock.WaitAll(wfuts...)
	})
}

func TestCounters(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 3, 1), 0)
		mustRead(t, d, 0, 2)
		d.Flush().Wait()
		d.ResetZone(0).Wait()
		w, r, f, rs := d.Counters()
		if w != int64(3*cfg.SectorSize) || r != int64(2*cfg.SectorSize) || f != 1 || rs != 1 {
			t.Errorf("counters = %d %d %d %d", w, r, f, rs)
		}
	})
}

func TestDiscardDataMode(t *testing.T) {
	cfg := testConfig()
	cfg.DiscardData = true
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, 0, pattern(cfg, 2, 1), 0)
		got := mustRead(t, d, 0, 2)
		if !bytes.Equal(got, make([]byte, 2*cfg.SectorSize)) {
			t.Error("discard mode should read zeroes")
		}
	})
}

func TestReportZones(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		mustWrite(t, d, d.ZoneStart(2), pattern(cfg, 5, 1), 0)
		zones := d.ReportZones()
		if len(zones) != cfg.NumZones {
			t.Fatalf("got %d zones", len(zones))
		}
		if zones[2].State != ZoneOpen || zones[2].WP != d.ZoneStart(2)+5 {
			t.Errorf("zone2 = %+v", zones[2])
		}
		if zones[0].State != ZoneEmpty {
			t.Errorf("zone0 = %+v", zones[0])
		}
	})
}

func TestCloseEmptyOpenZoneReturnsToEmpty(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if err := d.OpenZone(4); err != nil {
			t.Fatal(err)
		}
		if st := d.Zone(4).State; st != ZoneOpen {
			t.Fatalf("state = %v", st)
		}
		if err := d.CloseZone(4); err != nil {
			t.Fatal(err)
		}
		if st := d.Zone(4).State; st != ZoneEmpty {
			t.Errorf("state = %v, want empty (nothing written)", st)
		}
	})
}

func TestResetEmptyZoneIsNoop(t *testing.T) {
	cfg := testConfig()
	run(t, cfg, func(c *vclock.Clock, d *Device) {
		if err := d.ResetZone(3).Wait(); err != nil {
			t.Errorf("reset of empty zone: %v", err)
		}
	})
}

func TestFlushIsDurableAgainstExactCuts(t *testing.T) {
	// Property-style: after flush, PowerLossAt cannot roll back below
	// the flushed point regardless of the requested cut.
	cfg := testConfig()
	for cut := int64(0); cut <= 6; cut++ {
		run(t, cfg, func(c *vclock.Clock, d *Device) {
			mustWrite(t, d, 0, pattern(cfg, 3, 1), 0)
			d.Flush().Wait()
			mustWrite(t, d, 3, pattern(cfg, 3, 2), 0)
			d.PowerLossAt(map[int]int64{0: cut})
			wp := d.Zone(0).WP
			if wp < 3 {
				t.Errorf("cut %d: WP=%d below flushed prefix", cut, wp)
			}
		})
	}
}
